"""LogPublisher: the delta log behind a socket (DESIGN.md §8).

The builder owns the :class:`~repro.replication.log.DeltaLog`; followers
live in other processes (shard workers, serving replicas, other
machines).  The publisher puts the log — and its
:class:`~repro.replication.catalog.SnapshotCatalog` — behind the same
length-prefixed JSON framing as :mod:`repro.serving.rpc`:

* ``log_fetch(since, max_count)`` — range read: deltas advancing a
  consumer at version ``since``; a consumer behind the GC'd prefix gets
  a ``DeltaGapError`` back (typed over the wire) and re-bootstraps;
* ``log_wait(since, timeout)`` — the subscribe primitive: long-poll
  until the log grows past ``since`` (or the timeout lapses), then
  behave like ``log_fetch``;
* ``log_snapshot(accept)`` — newest catalog snapshot + version, the
  bootstrap half of snapshot-plus-tail recovery; a client whose
  ``accept`` list includes ``"columnar"`` gets a columnar snapshot
  passed through as the raw base64 segment (checksummed, decoded —
  and thereby verified — client-side) instead of the server decoding
  it to JSON first;
* ``log_status()`` — retained range and segment/snapshot bookkeeping;
* ``log_register(follower, since)`` / ``log_forget(follower)`` —
  follower-offset tracking: a *registered* follower's last-fetched-from
  position caps how far the :class:`SnapshotCatalog` garbage-collects
  folded segments (the publisher binds itself as the catalog's GC
  floor), so a slow registered follower catches up from the log instead
  of falling back to a snapshot re-bootstrap.  ``log_fetch``/``log_wait``
  accept an optional ``follower`` name and update its position.

:class:`PublisherThread` runs the publisher on a private event loop in
a daemon thread so a synchronous builder can serve followers while it
keeps building; all log access is marshalled onto that loop thread
(``publish`` / ``call``), keeping the single-writer log unshared.
"""

from __future__ import annotations

import asyncio
import base64
import json
import threading
from collections import deque
from typing import Any, Callable, Iterable, Sequence

from ..core.serialize import delta_to_dict
from ..core.store import OntologyDelta
from ..errors import ReproError
from ..obs.metrics import MetricsRegistry, get_registry
from ..serving.rpc import _canonical_bytes, read_frame, write_frame
from .catalog import SnapshotCatalog
from .log import DeltaLog

#: Methods a publisher answers over the wire.
PUBLISHER_METHODS = ("log_fetch", "log_wait", "log_snapshot", "log_status",
                     "log_register", "log_forget")

_POLL_INTERVAL = 0.05  # seconds between growth re-checks in log_wait


class LogPublisher:
    """Serves one :class:`DeltaLog` (and optional catalog) over TCP.

    Args:
        log: the delta log to publish.
        catalog: optional snapshot catalog backing ``log_snapshot``.
        host / port: bind address (port 0 picks an ephemeral port).
        registry: metrics registry holding this publisher's
            ``replication`` scope (follower lag gauges, fetch/snapshot
            counters, frame bytes); defaults to the process registry.
    """

    def __init__(self, log: DeltaLog,
                 catalog: "SnapshotCatalog | None" = None,
                 host: str = "127.0.0.1", port: int = 0,
                 registry: "MetricsRegistry | None" = None) -> None:
        self._log = log
        self._catalog = catalog
        self._host = host
        self._port = port
        self._server: "asyncio.AbstractServer | None" = None
        self._grew = asyncio.Event()
        # Registered follower name -> the version it last fetched from
        # ("everything at or below this is applied over there").
        self._followers: dict[str, int] = {}
        registry = registry if registry is not None else get_registry()
        self._metrics = registry.scope("replication")
        self._publishes = self._metrics.counter("publishes")
        self._published_deltas = self._metrics.counter("published_deltas")
        self._fetches = self._metrics.counter("fetches")
        self._fetched_deltas = self._metrics.counter("fetched_deltas")
        self._waits = self._metrics.counter("waits")
        self._snapshots_served = self._metrics.counter("snapshots_served")
        self._snapshot_bytes = self._metrics.counter("snapshot_bytes")
        self._bytes_in = self._metrics.counter("bytes_in")
        self._bytes_out = self._metrics.counter("bytes_out")
        self._errors = self._metrics.counter("errors")
        self._followers_gauge = self._metrics.gauge("followers")
        self._last_version_gauge = self._metrics.gauge("last_version")
        self._gc_floor_gauge = self._metrics.gauge("gc_floor")
        # (version, clock) stamp per publish — the substrate for
        # follower lag *in seconds*: a follower's seconds-lag is the age
        # of the oldest publish it has not yet consumed.
        self._append_times: "deque[tuple[int, float]]" = deque(maxlen=4096)
        # Fault injection (the audit campaign's follower-side faults):
        # per-follower artificial fetch/wait delay in seconds, and a
        # partition set whose members' fetches fail outright.
        self._injected_delay: "dict[str, float]" = {}
        self._injected_partition: "set[str]" = set()
        if catalog is not None:
            catalog.bind_gc_floor(self.follower_floor)

    # ------------------------------------------------------------------
    # fault injection (test/audit hooks; loop thread only)
    # ------------------------------------------------------------------
    def inject_fault(self, follower: str, *,
                     delay: "float | None" = None,
                     partition: "bool | None" = None) -> None:
        """Install an artificial fault on one follower's log reads:
        ``delay`` sleeps every ``log_fetch``/``log_wait`` that long
        before answering; ``partition=True`` makes them fail outright
        (``False`` heals).  Must run on the event-loop thread — marshal
        through :meth:`PublisherThread.call` from other threads.  Used
        by the fault-injection campaign to lag and partition followers
        without touching their processes."""
        name = str(follower)
        if delay is not None:
            if delay > 0:
                self._injected_delay[name] = float(delay)
            else:
                self._injected_delay.pop(name, None)
        if partition is not None:
            if partition:
                self._injected_partition.add(name)
            else:
                self._injected_partition.discard(name)

    def clear_faults(self) -> None:
        """Drop every injected delay and heal every partition."""
        self._injected_delay.clear()
        self._injected_partition.clear()

    async def _maybe_inject(self, follower: "str | None") -> None:
        if follower is None:
            return
        name = str(follower)
        if name in self._injected_partition:
            raise ReproError(
                f"injected partition: follower {name!r} is cut off "
                f"from the log")
        delay = self._injected_delay.get(name)
        if delay:
            await asyncio.sleep(delay)

    # ------------------------------------------------------------------
    # follower offsets
    # ------------------------------------------------------------------
    def follower_floor(self) -> "int | None":
        """The slowest registered follower's position (``None`` when no
        follower is registered) — the catalog's segment-GC floor."""
        floor = min(self._followers.values()) if self._followers else None
        self._gc_floor_gauge.set(-1 if floor is None else floor)
        return floor

    def followers(self) -> "dict[str, int]":
        return dict(self._followers)

    def _lag_seconds(self, since: int, now: float) -> float:
        """Age of the oldest publish a follower at ``since`` has not yet
        consumed; 0.0 when it is caught up."""
        for version, stamped in self._append_times:
            if version > since:
                return max(0.0, now - stamped)
        return 0.0

    def _note_follower(self, follower: "str | None", since: int) -> None:
        """Record a follower position and refresh the lag gauges —
        ``follower.<name>.lag_versions`` / ``.lag_seconds`` — plus the
        aggregate follower count and GC floor."""
        if follower is not None:
            self._followers[str(follower)] = since
        self._followers_gauge.set(len(self._followers))
        self._last_version_gauge.set(self._log.last_version)
        now = self._metrics.registry.clock()
        for name, position in self._followers.items():
            scope_name = f"follower.{name}"
            self._metrics.gauge(f"{scope_name}.lag_versions").set(
                max(0, self._log.last_version - position))
            self._metrics.gauge(f"{scope_name}.lag_seconds").set(
                self._lag_seconds(position, now))
        self.follower_floor()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "tuple[str, int]":
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port)
        sockname = self._server.sockets[0].getsockname()
        self._host, self._port = sockname[0], sockname[1]
        return self._host, self._port

    @property
    def address(self) -> "tuple[str, int]":
        return self._host, self._port

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def publish(self, deltas: "Iterable[OntologyDelta]") -> int:
        """Append new batches to the log and wake ``log_wait`` waiters.

        Must run on the publisher's event-loop thread (use
        :meth:`PublisherThread.publish` from other threads).
        """
        appended = self._log.extend(deltas)
        if appended:
            self._grew.set()
            self._grew = asyncio.Event()
            self._publishes.inc()
            self._published_deltas.inc(appended)
            self._append_times.append(
                (self._log.last_version, self._metrics.registry.clock()))
            self._last_version_gauge.set(self._log.last_version)
        return appended

    # ------------------------------------------------------------------
    # wire handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except (ConnectionError, OSError, ReproError):
                    break
                if frame is None:
                    break
                self._bytes_in.inc(len(frame))
                response = await self._handle_request(frame)
                try:
                    payload = _canonical_bytes(response)
                    self._bytes_out.inc(len(payload))
                    write_frame(writer, payload)
                    await writer.drain()
                except (ConnectionError, OSError):
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, frame: bytes) -> dict:
        request_id = None
        try:
            request = json.loads(frame.decode("utf-8"))
            request_id = request.get("id")
            method = request.get("method")
            if method not in PUBLISHER_METHODS:
                raise ReproError(f"unknown publisher method {method!r}")
            kwargs = request.get("kwargs", {})
            with self._metrics.time(f"method.{method}.seconds"):
                result = await getattr(self, "_" + method)(**kwargs)
            return {"id": request_id, "result": result}
        except Exception as exc:
            self._errors.inc()
            return {"id": request_id,
                    "error": {"type": type(exc).__name__,
                              "message": str(exc)}}

    # ------------------------------------------------------------------
    # methods (wire handlers)
    # ------------------------------------------------------------------
    async def _log_fetch(self, since: int = 0,
                         max_count: "int | None" = None,
                         follower: "str | None" = None) -> dict:
        # A fetch from `since` means everything <= since is applied
        # on that follower; last write wins so a re-bootstrapped
        # follower's position can also jump (or fall) legitimately.
        await self._maybe_inject(follower)
        self._note_follower(follower, since)
        self._fetches.inc()
        deltas = self._log.read(since, max_count=max_count)
        self._fetched_deltas.inc(len(deltas))
        return {
            "deltas": [delta_to_dict(delta) for delta in deltas],
            "first_version": self._log.first_version,
            "last_version": self._log.last_version,
        }

    async def _log_register(self, follower: str, since: int = 0) -> dict:
        self._note_follower(follower, since)
        return {"followers": len(self._followers)}

    async def _log_forget(self, follower: str) -> dict:
        removed = self._followers.pop(str(follower), None) is not None
        self._note_follower(None, 0)
        return {"removed": removed, "followers": len(self._followers)}

    async def _log_wait(self, since: int = 0, timeout: float = 10.0,
                        max_count: "int | None" = None,
                        follower: "str | None" = None) -> dict:
        """Long-poll: resolve as soon as the log grows past ``since``."""
        await self._maybe_inject(follower)
        self._note_follower(follower, since)
        self._waits.inc()
        deadline = asyncio.get_running_loop().time() + max(0.0, timeout)
        while self._log.last_version <= since:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                break
            # The event wakes publish()-driven growth instantly; the
            # short timeout also catches direct log appends made behind
            # the publisher's back.
            try:
                await asyncio.wait_for(self._grew.wait(),
                                       min(remaining, _POLL_INTERVAL))
            except asyncio.TimeoutError:
                pass
        if self._log.last_version <= since:
            return {"deltas": [],
                    "first_version": self._log.first_version,
                    "last_version": self._log.last_version}
        return await self._log_fetch(since, max_count=max_count)

    async def _log_snapshot(self, accept: "list[str] | None" = None) -> dict:
        if self._catalog is None:
            return {"snapshot": None, "version": 0}
        self._snapshots_served.inc()
        entry = self._catalog.latest_entry()
        if entry is not None and entry.get("format") == "columnar" \
                and accept is not None and "columnar" in accept:
            # Pass the packed segment through verbatim: no server-side
            # decode, and the client's decode verifies the checksum.
            segment = self._catalog.read_segment(entry)
            self._snapshot_bytes.inc(len(segment))
            return {"snapshot": None,
                    "segment": base64.b64encode(segment).decode("ascii"),
                    "format": "columnar",
                    "version": entry["version"]}
        snapshot, version = self._catalog.latest()
        return {"snapshot": snapshot, "version": version}

    async def _log_status(self) -> dict:
        status = {"log": self._log.describe()}
        if self._catalog is not None:
            status["catalog"] = self._catalog.describe()
        return status


class PublisherThread:
    """Runs a :class:`LogPublisher` on a daemon thread's event loop.

    The thread owns all log/catalog access after :meth:`start`:
    :meth:`publish` and :meth:`call` marshal work onto the loop, so the
    builder thread never races the request handlers on the log's file
    handles.
    """

    def __init__(self, log: DeltaLog,
                 catalog: "SnapshotCatalog | None" = None,
                 host: str = "127.0.0.1", port: int = 0,
                 registry: "MetricsRegistry | None" = None) -> None:
        self._publisher = LogPublisher(log, catalog, host, port,
                                       registry=registry)
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self._started = threading.Event()
        self._start_error: "BaseException | None" = None

    # ------------------------------------------------------------------
    def start(self, timeout: float = 30.0) -> "tuple[str, int]":
        """Start the loop thread and bind; returns the address."""
        if self._thread is not None:
            return self._publisher.address
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="log-publisher")
        self._thread.start()
        if not self._started.wait(timeout):
            raise ReproError("log publisher failed to start in time")
        if self._start_error is not None:
            raise ReproError(
                f"log publisher failed to bind: {self._start_error!r}")
        return self._publisher.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._publisher.start())
        except BaseException as exc:  # surface bind failures to start()
            self._start_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            try:
                loop.run_until_complete(self._publisher.close())
                # Cancel connection handlers still parked on reads so
                # the loop closes without destroying pending tasks.
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True))
            finally:
                loop.close()

    @property
    def address(self) -> "tuple[str, int]":
        return self._publisher.address

    # ------------------------------------------------------------------
    def call(self, fn: Callable[[], Any], timeout: float = 60.0) -> Any:
        """Run ``fn()`` on the publisher's loop thread (e.g. a catalog
        ``maybe_compact`` against the builder's store) and return its
        result."""
        if self._loop is None:
            raise ReproError("the publisher thread is not running")

        async def _invoke():
            return fn()

        future = asyncio.run_coroutine_threadsafe(_invoke(), self._loop)
        return future.result(timeout)

    def inject_fault(self, follower: str, *,
                     delay: "float | None" = None,
                     partition: "bool | None" = None) -> None:
        """Thread-safe :meth:`LogPublisher.inject_fault` (marshalled
        onto the loop thread) — the fault campaign's follower-side
        delay/partition switch."""
        self.call(lambda: self._publisher.inject_fault(
            follower, delay=delay, partition=partition))

    def clear_faults(self) -> None:
        """Thread-safe :meth:`LogPublisher.clear_faults`."""
        self.call(self._publisher.clear_faults)

    def publish(self, deltas: "Sequence[OntologyDelta]",
                timeout: float = 60.0) -> int:
        """Thread-safe :meth:`LogPublisher.publish`."""
        deltas = list(deltas)
        return self.call(lambda: self._publisher.publish(deltas),
                         timeout=timeout)

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "PublisherThread":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()
