"""Replicated delta log: the durability and fan-out substrate (DESIGN.md §8).

GIANT's ontology is rebuilt continuously and consumed online, so the
*delta stream* — not any single in-memory store — is the system of
record.  This package makes that stream durable and shippable, following
the log-shipping / snapshot-plus-tail recovery discipline of incremental
view-maintenance systems: every follower state must equal replay of a
snapshot plus a contiguous delta suffix.

* :mod:`repro.replication.log` — :class:`DeltaLog`: a durable, segmented
  write-ahead log of :class:`~repro.core.store.OntologyDelta` batches
  (size-bounded JSON-lines segments, manifest, fsync-on-commit option,
  contiguity checks on append, range reads by version, torn-tail crash
  recovery);
* :mod:`repro.replication.catalog` — :class:`SnapshotCatalog`: triggers
  :meth:`OntologyStore.compact` when the un-folded log prefix crosses a
  size threshold, records snapshots alongside the log, and garbage-
  collects folded segments while retaining a configurable tail;
* :mod:`repro.replication.publisher` — :class:`LogPublisher`: serves
  ``fetch(since, max)`` / long-poll ``wait`` / snapshot hand-off over
  the :mod:`repro.serving.rpc` length-prefixed framing (plus
  :class:`PublisherThread` to run it next to a builder);
* :mod:`repro.replication.follower` — :class:`LogFollower`: bootstraps
  an :class:`~repro.core.store.OntologyStore` from catalog snapshot +
  log tail and keeps it current, recovering from
  :class:`~repro.errors.DeltaGapError` (a GC'd prefix) by
  re-bootstrapping; :class:`SyncLogClient` / :class:`LocalLogClient`
  are the blocking transports behind it.

:mod:`repro.cluster.remote` builds on this package to run every shard of
a :class:`~repro.cluster.service.ClusterService` in its own
follower-fed worker process.
"""

from .catalog import SNAPSHOT_FORMATS, SnapshotCatalog
from .follower import LocalLogClient, LogFollower, SyncLogClient
from .log import DeltaLog
from .publisher import LogPublisher, PublisherThread

__all__ = [
    "DeltaLog",
    "LocalLogClient",
    "LogFollower",
    "LogPublisher",
    "PublisherThread",
    "SNAPSHOT_FORMATS",
    "SnapshotCatalog",
    "SyncLogClient",
]
