"""Tests for repro.core.features and repro.core.gctsp."""

import numpy as np
import pytest

from repro.config import GCTSPConfig
from repro.core.features import FEATURE_FIELDS, NodeFeatureExtractor
from repro.core.gctsp import (
    GCTSPNet,
    KEY_ELEMENT_CLASSES,
    RELATION_VOCAB,
    prepare_example,
)
from repro.errors import TrainingError
from repro.graph.qtig import build_qtig


@pytest.fixture(scope="module")
def example(extractor, parser):
    queries = [["best", "fuel", "efficient", "cars"],
               ["fuel", "efficient", "cars"]]
    titles = [["the", "fuel", "efficient", "cars", "ranked", "today"],
              ["review", "of", "famous", "fuel", "efficient", "cars"]]
    return prepare_example(queries, titles, extractor, parser,
                           gold_tokens=["fuel", "efficient", "cars"])


class TestFeatures:
    def test_feature_matrix_shape(self, example):
        assert example.features.shape == (example.graph.num_nodes, len(FEATURE_FIELDS))

    def test_special_rows_all_zero(self, example):
        assert np.all(example.features[0] == 0)  # sos
        assert np.all(example.features[1] == 0)  # eos

    def test_features_within_vocab(self, example):
        for col, (_name, vocab_size) in enumerate(FEATURE_FIELDS):
            assert example.features[:, col].max() < vocab_size
            assert example.features[:, col].min() >= 0

    def test_stopword_flag(self, example, extractor):
        graph = example.graph
        the = graph.node_id("the")
        cars = graph.node_id("cars")
        assert example.features[the, 2] == 2  # stop
        assert example.features[cars, 2] == 1  # content

    def test_labels_mark_gold_tokens(self, example):
        graph = example.graph
        for token in ("fuel", "efficient", "cars"):
            assert example.labels[graph.node_id(token)] == 1
        assert example.labels[graph.node_id("best")] == 0
        assert example.labels[0] == 0  # sos never positive

    def test_role_labels(self, extractor, parser):
        ex = prepare_example(
            [["apple", "launches", "iphone"]],
            [["apple", "launches", "iphone", "in", "california"]],
            extractor, parser,
            token_roles={"apple": "entity", "launches": "trigger",
                         "california": "location"},
        )
        graph = ex.graph
        assert ex.labels[graph.node_id("apple")] == KEY_ELEMENT_CLASSES.index("entity")
        assert ex.labels[graph.node_id("launches")] == KEY_ELEMENT_CLASSES.index("trigger")
        assert ex.labels[graph.node_id("california")] == KEY_ELEMENT_CLASSES.index("location")
        assert ex.labels[graph.node_id("in")] == 0

    def test_adjacency_count_matches_relation_vocab(self, example):
        assert len(example.adjacencies) == 2 * len(RELATION_VOCAB)


class TestGCTSPNet:
    def test_logits_shape(self, example, tiny_gctsp_config):
        model = GCTSPNet(tiny_gctsp_config)
        logits = model.node_logits(example)
        assert logits.shape == (example.graph.num_nodes, 2)

    def test_fit_reduces_loss(self, example, tiny_gctsp_config):
        model = GCTSPNet(tiny_gctsp_config)
        losses = model.fit([example], epochs=10)
        assert losses[-1] < losses[0]

    def test_fit_empty_raises(self, tiny_gctsp_config):
        with pytest.raises(TrainingError):
            GCTSPNet(tiny_gctsp_config).fit([])

    def test_fit_unlabeled_raises(self, extractor, parser, tiny_gctsp_config):
        ex = prepare_example([["a", "b"]], [["a", "b"]], extractor, parser)
        with pytest.raises(TrainingError):
            GCTSPNet(tiny_gctsp_config).fit([ex])

    def test_overfits_single_example(self, example, tiny_gctsp_config):
        model = GCTSPNet(tiny_gctsp_config)
        model.fit([example], epochs=30)
        assert model.extract_phrase(example) == ["fuel", "efficient", "cars"]

    def test_order_nodes_respects_text_order(self, example):
        graph = example.graph
        positives = [graph.node_id("cars"), graph.node_id("fuel"),
                     graph.node_id("efficient")]
        ordered = GCTSPNet.order_nodes(graph, positives)
        assert ordered == ["fuel", "efficient", "cars"]

    def test_order_nodes_empty(self, example):
        assert GCTSPNet.order_nodes(example.graph, []) == []

    def test_predict_labels_binary(self, example, tiny_gctsp_config):
        model = GCTSPNet(tiny_gctsp_config)
        labels = model.predict_labels(example)
        assert set(np.unique(labels)) <= {0, 1}

    def test_trained_model_generalises(self, trained_concept_model, cmd_splits):
        _train, _dev, test, _raw = cmd_splits
        from repro.eval import evaluate_phrases

        preds = [trained_concept_model.extract_phrase(e) for e in test]
        golds = [e.gold_tokens for e in test]
        scores = evaluate_phrases(preds, golds)
        assert scores.f1 > 0.6
        assert scores.coverage > 0.8

    def test_key_element_model_predicts_roles(self, trained_key_element_model,
                                              emd_dataset, extractor, parser):
        example = prepare_example(
            emd_dataset[0].queries, emd_dataset[0].titles, extractor, parser,
            token_roles=emd_dataset[0].token_roles,
        )
        roles = trained_key_element_model.predict_key_elements(example)
        assert isinstance(roles, dict)
        assert all(r in ("entity", "trigger", "location") for r in roles.values())

    def test_state_dict_round_trip(self, example, tiny_gctsp_config):
        model = GCTSPNet(tiny_gctsp_config)
        before = model.predict_labels(example)
        state = model.state_dict()
        clone = GCTSPNet(tiny_gctsp_config)
        clone.load_state_dict(state)
        after = clone.predict_labels(example)
        assert np.array_equal(before, after)
