"""Tests for the autograd engine, including finite-difference gradient
checks and hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.autograd import Tensor, concat, no_grad, stack
from repro.nn import functional as F


def numeric_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn at x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        xp, xm = x.copy(), x.copy()
        xp[idx] += eps
        xm[idx] -= eps
        grad[idx] = (fn(xp) - fn(xm)) / (2 * eps)
        it.iternext()
    return grad


def check_grad(build, x, tol=1e-6):
    """build(tensor) -> scalar Tensor; compares autograd vs numeric grad."""
    t = Tensor(x, requires_grad=True)
    out = build(t)
    out.backward()
    num = numeric_grad(lambda arr: build(Tensor(arr, requires_grad=True)).item(), x)
    assert np.abs(t.grad - num).max() < tol


RNG = np.random.default_rng(42)


class TestGradients:
    def test_add_mul(self):
        x = RNG.standard_normal((3, 4))
        check_grad(lambda t: ((t * 2.0 + 1.0) * t).sum(), x)

    def test_sub_div(self):
        x = RNG.standard_normal((3,)) + 3.0
        check_grad(lambda t: ((t - 0.5) / (t + 2.0)).sum(), x)

    def test_matmul(self):
        x = RNG.standard_normal((3, 4))
        w = RNG.standard_normal((4, 2))
        check_grad(lambda t: (t @ Tensor(w)).sum(), x)

    def test_matmul_vector(self):
        x = RNG.standard_normal(4)
        w = RNG.standard_normal((4, 3))
        check_grad(lambda t: (t @ Tensor(w)).sum(), x)

    def test_tanh_sigmoid_relu_exp_log(self):
        x = np.abs(RNG.standard_normal((2, 3))) + 0.5
        check_grad(lambda t: (t.tanh() + t.sigmoid() + t.relu() + t.exp() + t.log()).sum(), x)

    def test_pow(self):
        x = np.abs(RNG.standard_normal(5)) + 0.5
        check_grad(lambda t: (t ** 3).sum(), x)

    def test_sum_axis(self):
        x = RNG.standard_normal((3, 4))
        check_grad(lambda t: (t.sum(axis=1) ** 2).sum(), x)

    def test_mean(self):
        x = RNG.standard_normal((4, 2))
        check_grad(lambda t: (t.mean(axis=0) ** 2).sum(), x)

    def test_logsumexp(self):
        x = RNG.standard_normal((3, 5))
        check_grad(lambda t: t.logsumexp(axis=1).sum(), x)

    def test_max(self):
        x = RNG.standard_normal((3, 5))
        check_grad(lambda t: t.max(axis=1).sum(), x)

    def test_getitem(self):
        x = RNG.standard_normal((5, 3))
        check_grad(lambda t: (t[1:4] * 2).sum(), x)

    def test_gather_rows_repeated_indices(self):
        x = RNG.standard_normal((4, 3))
        idx = [0, 0, 2, 3, 0]
        check_grad(lambda t: (t.gather_rows(idx) ** 2).sum(), x)

    def test_reshape_transpose(self):
        x = RNG.standard_normal((2, 6))
        w = RNG.standard_normal((3, 2))
        check_grad(lambda t: (t.reshape(3, 4).T @ Tensor(w)).sum(), x)

    def test_concat(self):
        x = RNG.standard_normal((2, 3))
        check_grad(lambda t: (concat([t, t * 2], axis=0) ** 2).sum(), x)

    def test_stack(self):
        x = RNG.standard_normal(4)
        check_grad(lambda t: (stack([t, t * 3], axis=0) ** 2).sum(), x)

    def test_broadcast_add(self):
        x = RNG.standard_normal(4)
        m = RNG.standard_normal((3, 4))
        check_grad(lambda t: (Tensor(m) + t).sum(), x)

    def test_broadcast_mul(self):
        x = RNG.standard_normal((3, 1))
        m = RNG.standard_normal((3, 4))
        check_grad(lambda t: (Tensor(m) * t).sum(), x)


class TestLosses:
    def test_cross_entropy_positive(self):
        logits = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
        loss = F.cross_entropy(logits, [0, 1, 2, 0])
        assert loss.item() > 0

    def test_cross_entropy_grad(self):
        x = RNG.standard_normal((4, 3))
        check_grad(lambda t: F.cross_entropy(t, [0, 1, 2, 0]), x)

    def test_bce_with_logits_grad(self):
        x = RNG.standard_normal(6)
        check_grad(lambda t: F.binary_cross_entropy_with_logits(t, [1, 0, 1, 0, 1, 0]), x)

    def test_bce_pos_weight(self):
        x = RNG.standard_normal(4)
        check_grad(
            lambda t: F.binary_cross_entropy_with_logits(t, [1, 0, 0, 0], pos_weight=3.0),
            x,
        )

    def test_mse_zero_at_target(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        assert F.mse(pred, [1.0, 2.0]).item() == 0.0

    def test_hinge_pair_loss_zero_when_separated(self):
        pos = Tensor(np.array([0.1]), requires_grad=True)
        neg = Tensor(np.array([5.0]))
        assert F.hinge_pair_loss(pos, neg, margin=1.0).item() == 0.0

    def test_softmax_sums_to_one(self):
        x = Tensor(RNG.standard_normal((3, 4)))
        s = F.softmax(x, axis=1)
        assert np.allclose(s.data.sum(axis=1), 1.0)


class TestMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_on_nograd_raises(self):
        t = Tensor(np.ones(2))
        with pytest.raises(RuntimeError):
            t.backward()

    def test_no_grad_context(self):
        with no_grad():
            t = Tensor(np.ones(2), requires_grad=True)
            out = t * 2
        assert not out.requires_grad

    def test_grad_accumulates_across_backwards(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2).sum().backward()
        (t * 2).sum().backward()
        assert np.allclose(t.grad, 4.0)

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t.sum()).backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph_gradient(self):
        # y = x*x + x*x reuses x twice along two paths.
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * x + x * x
        y.sum().backward()
        assert np.allclose(x.grad, 12.0)

    def test_detach_breaks_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        d = x.detach()
        assert not d.requires_grad

    def test_cannot_wrap_tensor(self):
        with pytest.raises(TypeError):
            Tensor(Tensor(np.ones(1)))


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 5), st.integers(2, 5))
def test_matmul_grad_shapes_random(n, m):
    x = np.random.default_rng(n * 10 + m).standard_normal((n, m))
    t = Tensor(x, requires_grad=True)
    w = Tensor(np.random.default_rng(1).standard_normal((m, 3)))
    (t @ w).sum().backward()
    assert t.grad.shape == x.shape


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-5, 5), min_size=2, max_size=8))
def test_logsumexp_upper_bounds_max(values):
    x = Tensor(np.array(values))
    lse = x.logsumexp(axis=0).item()
    assert lse >= max(values) - 1e-9
    assert lse <= max(values) + np.log(len(values)) + 1e-9
