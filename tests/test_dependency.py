"""Tests for repro.text.dependency."""

import pytest

from repro.text.dependency import DEP_LABELS, DependencyParser
from repro.text.pos import PosTagger


@pytest.fixture
def parser():
    tagger = PosTagger()
    tagger.register_proper_nouns(["hayao miyazaki", "jay chou"])
    return DependencyParser(tagger)


def arcs_by_label(arcs):
    out = {}
    for a in arcs:
        out.setdefault(a.label, []).append((a.head, a.dependent))
    return out


class TestNounPhrases:
    def test_det_attaches_to_head_noun(self, parser):
        arcs = arcs_by_label(parser.parse(["the", "films"]))
        assert (1, 0) in arcs["det"]

    def test_amod(self, parser):
        arcs = arcs_by_label(parser.parse(["best", "famous", "cars"]))
        assert set(arcs["amod"]) == {(2, 0), (2, 1)}

    def test_compound_chain(self, parser):
        arcs = arcs_by_label(parser.parse(["hayao", "miyazaki", "films"]))
        assert set(arcs["compound"]) == {(2, 0), (2, 1)}

    def test_nummod(self, parser):
        arcs = arcs_by_label(parser.parse(["top", "5", "cars"]))
        assert (2, 1) in arcs["nummod"]


class TestVerbArguments:
    def test_nsubj_and_dobj(self, parser):
        # "jay chou wins awards": chou <- nsubj, awards <- dobj
        arcs = arcs_by_label(parser.parse(["jay", "chou", "wins", "awards"]))
        assert (2, 1) in arcs["nsubj"]
        assert (2, 3) in arcs["dobj"]

    def test_punct_attaches_to_root(self, parser):
        arcs = parser.parse(["cars", "win", "races", "!"])
        punct = [a for a in arcs if a.label == "punct"]
        assert punct and punct[0].head == 1


class TestStructure:
    def test_every_non_root_token_has_one_head(self, parser):
        tokens = ["what", "are", "the", "famous", "films", "of", "miyazaki", "?"]
        arcs = parser.parse(tokens)
        dependents = [a.dependent for a in arcs]
        assert len(dependents) == len(set(dependents))
        assert len(dependents) == len(tokens) - 1  # all but root

    def test_labels_are_known(self, parser):
        arcs = parser.parse(["the", "big", "cars", "win", "in", "london"])
        assert all(a.label in DEP_LABELS for a in arcs)

    def test_empty_input(self, parser):
        assert parser.parse([]) == []

    def test_single_token(self, parser):
        assert parser.parse(["cars"]) == []

    def test_tags_length_mismatch_raises(self, parser):
        with pytest.raises(ValueError):
            parser.parse(["a", "b"], tags=["DET"])

    def test_no_self_loops(self, parser):
        arcs = parser.parse(["best", "cars", "win", "races", "today"])
        assert all(a.head != a.dependent for a in arcs)
