"""Tests for repro.tsp.atsp, including brute-force optimality checks."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DecodingError
from repro.tsp.atsp import LinKernighanSolver, held_karp_path, solve_path_atsp


def brute_force(dist, start, end):
    n = dist.shape[0]
    interior = [i for i in range(n) if i not in (start, end)]
    best, best_cost = None, np.inf
    for perm in itertools.permutations(interior):
        path = [start] + list(perm) + [end]
        cost = sum(dist[a, b] for a, b in zip(path, path[1:]))
        if cost < best_cost:
            best, best_cost = path, cost
    return best, best_cost


def path_cost(dist, path):
    return sum(dist[a, b] for a, b in zip(path, path[1:]))


class TestHeldKarp:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        for trial in range(5):
            n = 7
            dist = rng.random((n, n)) * 10
            np.fill_diagonal(dist, 0)
            path = held_karp_path(dist, 0, n - 1)
            _bf, bf_cost = brute_force(dist, 0, n - 1)
            assert path_cost(dist, path) == pytest.approx(bf_cost)

    def test_path_is_permutation(self):
        rng = np.random.default_rng(1)
        dist = rng.random((6, 6))
        path = held_karp_path(dist, 0, 5)
        assert sorted(path) == list(range(6))
        assert path[0] == 0 and path[-1] == 5

    def test_two_nodes(self):
        dist = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert held_karp_path(dist, 0, 1) == [0, 1]

    def test_asymmetric_matters(self):
        # Going 0->1->2->3 is cheap; reverse directions are expensive.
        dist = np.full((4, 4), 100.0)
        np.fill_diagonal(dist, 0.0)
        dist[0, 1] = dist[1, 2] = dist[2, 3] = 1.0
        assert held_karp_path(dist, 0, 3) == [0, 1, 2, 3]

    def test_nonsquare_raises(self):
        with pytest.raises(DecodingError):
            held_karp_path(np.ones((2, 3)), 0, 1)

    def test_same_start_end_raises(self):
        with pytest.raises(DecodingError):
            held_karp_path(np.ones((3, 3)), 0, 0)


class TestLinKernighan:
    def test_valid_permutation(self):
        rng = np.random.default_rng(2)
        dist = rng.random((15, 15)) * 10
        path = LinKernighanSolver().solve(dist, 0, 14)
        assert sorted(path) == list(range(15))
        assert path[0] == 0 and path[-1] == 14

    def test_near_optimal_on_small(self):
        rng = np.random.default_rng(3)
        for trial in range(3):
            dist = rng.random((8, 8)) * 10
            np.fill_diagonal(dist, 0)
            heur = LinKernighanSolver().solve(dist, 0, 7)
            exact = held_karp_path(dist, 0, 7)
            assert path_cost(dist, heur) <= path_cost(dist, exact) * 1.25

    def test_chain_structure_recovered(self):
        n = 12
        dist = np.full((n, n), 50.0)
        np.fill_diagonal(dist, 0.0)
        for i in range(n - 1):
            dist[i, i + 1] = 1.0
        path = LinKernighanSolver().solve(dist, 0, n - 1)
        assert path == list(range(n))


class TestSolvePathAtsp:
    def test_dispatches_exact_small(self):
        rng = np.random.default_rng(4)
        dist = rng.random((6, 6))
        path = solve_path_atsp(dist, 0, 5)
        assert path_cost(dist, path) == pytest.approx(brute_force(dist, 0, 5)[1])

    def test_large_instance_uses_heuristic(self):
        rng = np.random.default_rng(5)
        n = 18
        dist = rng.random((n, n))
        path = solve_path_atsp(dist, 0, n - 1, exact_limit=5)
        assert sorted(path) == list(range(n))

    def test_empty_and_singleton(self):
        assert solve_path_atsp(np.zeros((0, 0)), 0, 0) == []
        assert solve_path_atsp(np.zeros((1, 1)), 0, 0) == [0]

    def test_two_nodes(self):
        assert solve_path_atsp(np.ones((2, 2)), 0, 1) == [0, 1]


@settings(max_examples=20, deadline=None)
@given(st.integers(3, 7), st.integers(0, 10_000))
def test_exact_beats_or_ties_heuristic(n, seed):
    rng = np.random.default_rng(seed)
    dist = rng.random((n, n)) * 10
    np.fill_diagonal(dist, 0)
    exact = held_karp_path(dist, 0, n - 1)
    heur = LinKernighanSolver().solve(dist, 0, n - 1)
    assert path_cost(dist, exact) <= path_cost(dist, heur) + 1e-9
