"""Tests for repro.apps.story_tracker (incremental story tracking)."""

import pytest

from repro.apps.story_tracker import StoryTracker
from repro.apps.story_tree import EventRecord, StoryTreeBuilder


def event(phrase, trigger, entities, day):
    return EventRecord(phrase=phrase, trigger=trigger, entities=entities, day=day)


@pytest.fixture
def trade_events():
    return [
        event("usa imposes new tariffs on chinese goods", "imposes", ["usa", "china"], 1),
        event("china imposes tariffs on usa products", "imposes", ["china", "usa"], 2),
        event("usa imposes more tariffs on chinese commodities", "imposes", ["usa", "china"], 5),
    ]


@pytest.fixture
def concert_events():
    return [
        event("jay chou will have a concert", "concert", ["jay chou"], 2),
        event("jay chou concert tickets sold out", "concert", ["jay chou"], 3),
    ]


class TestRouting:
    def test_related_events_share_story(self, trade_events):
        tracker = StoryTracker()
        tracker.add_events(trade_events)
        assert len(tracker) == 1
        assert len(tracker.stories[0].events) == 3

    def test_unrelated_events_get_new_story(self, trade_events, concert_events):
        tracker = StoryTracker()
        tracker.add_events(trade_events + concert_events)
        assert len(tracker) == 2

    def test_fast_match_trigger_and_entity(self, concert_events):
        tracker = StoryTracker(attach_threshold=100.0)  # force fast path only
        tracker.add_events(concert_events)
        assert len(tracker) == 1

    def test_chronological_insertion(self, trade_events):
        tracker = StoryTracker()
        tracker.add_events(list(reversed(trade_events)))
        days = [e.day for e in tracker.stories[0].events]
        assert days == sorted(days)

    def test_empty_tracker(self):
        tracker = StoryTracker()
        assert len(tracker) == 0
        assert tracker.story_of("nothing") is None


class TestFollowUps:
    def test_follow_ups_are_later_same_story(self, trade_events):
        tracker = StoryTracker()
        tracker.add_events(trade_events)
        ups = tracker.follow_ups("usa imposes new tariffs on chinese goods")
        assert [e.day for e in ups] == [2, 5]

    def test_follow_ups_limit(self, trade_events):
        tracker = StoryTracker()
        tracker.add_events(trade_events)
        ups = tracker.follow_ups("usa imposes new tariffs on chinese goods", limit=1)
        assert len(ups) == 1

    def test_follow_ups_unknown_event(self):
        assert StoryTracker().follow_ups("ghost") == []

    def test_no_follow_ups_for_latest(self, trade_events):
        tracker = StoryTracker()
        tracker.add_events(trade_events)
        assert tracker.follow_ups(
            "usa imposes more tariffs on chinese commodities") == []

    def test_follow_ups_keep_same_day_siblings(self, trade_events):
        """Events carry day granularity only: a same-day sibling counts
        as "published after" the read event and must be recommended."""
        tracker = StoryTracker()
        sibling = event("china answers usa tariffs the same day",
                        "imposes", ["china", "usa"], 1)
        tracker.add_events(trade_events + [sibling])
        ups = tracker.follow_ups("usa imposes new tariffs on chinese goods")
        assert sibling.phrase in [e.phrase for e in ups]

    def test_follow_ups_when_read_event_evicted_from_story(self, trade_events):
        """Regression: the phrase index can point at a story whose
        matching event was merged away/evicted; ``follow_ups`` must
        answer "no follow-ups", not raise StopIteration."""
        tracker = StoryTracker()
        tracker.add_events(trade_events)
        read_phrase = "usa imposes new tariffs on chinese goods"
        story = tracker.story_of(read_phrase)
        story.events[:] = [e for e in story.events
                           if e.phrase != read_phrase]
        assert tracker.follow_ups(read_phrase) == []


class TestTreeMaterialisation:
    def test_tree_of_story(self, trade_events):
        tracker = StoryTracker(builder=StoryTreeBuilder(cluster_threshold=1.0))
        tracker.add_events(trade_events)
        tree = tracker.tree_of(trade_events[1].phrase)
        assert tree is not None
        assert tree.num_events == 3
        assert tree.root.event.day == 1

    def test_tree_of_unknown(self):
        assert StoryTracker().tree_of("ghost") is None
