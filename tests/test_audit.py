"""The online consistency auditor and its fault-injection campaign.

Covers the auditor's checks in isolation (unstamped / session-echo /
monotonic / value-divergence / read-your-writes), the crash-path fixes
the campaign flushed out — typed ``ShardUnavailableError`` recovery on
scatter reads through a dead worker's stale proxy, the all-or-nothing
``restart_shard`` swap, kill-escalated corpse reaping — the
view-rehydration path after a GC-forced parent re-bootstrap, the full
seeded campaign (every fault kind plus one mid-traffic chunked
rebalance, zero violations expected), and the negative control: a
deliberately stale-reading backend rig must be *caught*, with a
shrinkable artifact naming the violating session.

Worker processes are spawned for the cluster topologies; the module is
a real file so the ``spawn`` start method can re-import it safely.
"""

import json
import os
import pathlib

import pytest

from repro.audit import (
    AuditLog,
    generate_schedule,
    run_campaign,
)
from repro.cluster import RemoteClusterService
from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.core.store import OntologyStore
from repro.errors import DeltaGapError, ReproError, ShardUnavailableError
from repro.replication import DeltaLog, PublisherThread, SnapshotCatalog
from repro.replication.follower import SyncLogClient
from repro.serving import OntologyService
from repro.serving.rpc import dumps
from repro.text.ner import NerTagger
from repro.text.tokenizer import tokenize

TAGGER_OPTIONS = {"coherence_threshold": 0.01, "lcs_threshold": 0.6}

_CAST = ("iron man", "thor", "hulk", "black widow", "wasp")


@pytest.fixture
def log_dir(tmp_path, request):
    """Log directory — under REPRO_AUDIT_ARTIFACTS when set, so a
    failing CI run uploads the on-disk state that broke."""
    root = os.environ.get("REPRO_AUDIT_ARTIFACTS")
    if root:
        path = pathlib.Path(root) / request.node.name.replace("/", "_")
        path.mkdir(parents=True, exist_ok=True)
        return path
    return tmp_path / "log"


def _seed_log(log_dir):
    producer = AttentionOntology()
    producer.begin_delta("build")
    concept = producer.add_node(NodeType.CONCEPT, "marvel movies")
    for name in _CAST:
        entity = producer.add_node(NodeType.ENTITY, name)
        producer.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
    producer.add_alias(concept.node_id, "mcu films")
    delta = producer.commit_delta()
    log = DeltaLog(log_dir, segment_max_bytes=512)
    log.append(delta)
    catalog = SnapshotCatalog(log, compact_bytes=1, retain_segments=0)
    catalog.record(OntologyStore.bootstrap(None, [delta]))
    ner = NerTagger()
    for name in _CAST:
        ner.register(name, "WORK")
    return producer, log, catalog, ner


def _grow(producer, ner, tag: str):
    """One fresh delta: a concept with two entities, NER-registered."""
    producer.begin_delta("grow")
    concept = producer.add_node(NodeType.CONCEPT, f"{tag} movies")
    for name in (f"{tag} hero", f"{tag} villain"):
        entity = producer.add_node(NodeType.ENTITY, name)
        producer.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
        ner.register(name, "WORK")
    return producer.commit_delta()


# ----------------------------------------------------------------------
# the schedule generator
# ----------------------------------------------------------------------
class TestSchedule:
    def test_deterministic_and_json_round_trip(self):
        first = generate_schedule(seed=11, steps=14)
        second = generate_schedule(seed=11, steps=14)
        assert first == second
        assert first == json.loads(json.dumps(first))
        assert generate_schedule(seed=12, steps=14) != first

    def test_covers_the_fault_matrix(self):
        ops = generate_schedule(seed=4, steps=12)["ops"]
        kinds = [op["op"] for op in ops]
        assert kinds[0] == "seed"
        for required in ("kill", "restart", "delay", "heal", "lag_gc",
                         "rebalance"):
            assert required in kinds, required
        assert kinds.count("rebalance") == 1
        rebalance = next(op for op in ops if op["op"] == "rebalance")
        assert rebalance["probes"], "rebalance must interleave reads"
        # The reads right after the kill are the typed-recovery probe.
        assert kinds[kinds.index("kill") + 1] == "read"


# ----------------------------------------------------------------------
# the audit log's checks, in isolation (no cluster)
# ----------------------------------------------------------------------
class TestAuditLogChecks:
    def test_session_guarantees(self, log_dir):
        producer, log, catalog, ner = _seed_log(log_dir)
        single = OntologyService(producer, ner=ner,
                                 tagger_options=TAGGER_OPTIONS)
        with PublisherThread(log, catalog) as publisher:
            audit = AuditLog(publisher.address, ner=ner,
                             tagger_options=TAGGER_OPTIONS)
            try:
                version = producer.store.version
                result = single.concepts_of_entity("thor")
                ok = audit.observe("s0", "concepts_of_entity", ("thor",),
                                   {}, result,
                                   {"version": version, "session": "s0"})
                assert ok is None

                unstamped = audit.observe("s0", "concepts_of_entity",
                                          ("thor",), {}, result, None)
                assert unstamped.kind == "unstamped"

                echoed = audit.observe("s0", "concepts_of_entity",
                                       ("thor",), {}, result,
                                       {"version": version,
                                        "session": "someone-else"})
                assert echoed.kind == "session-mismatch"

                backwards = audit.observe(
                    "s0", "concepts_of_entity", ("thor",), {}, result,
                    {"version": version - 1, "session": "s0"})
                assert backwards.kind == "monotonic-reads"
                assert "backwards" in backwards.detail

                torn = audit.observe(
                    "s1", "concepts_of_entity", ("thor",), {},
                    ("not", "the", "answer"),
                    {"version": version, "session": "s1"})
                assert torn.kind == "value-divergence"

                # A session's write applies to the oracle; a later read
                # that does not reflect it is read-your-writes.
                profile = single.record_read("u-9", ["thor", "hulk"])
                assert audit.observe(
                    "s2", "record_read", ("u-9", ["thor", "hulk"]), {},
                    profile,
                    {"version": version, "session": "s2"}) is None
                stale = audit.observe(
                    "s2", "user_interests", ("u-9",), {"k": 3}, (),
                    {"version": version, "session": "s2"})
                assert stale.kind == "read-your-writes"
                assert stale.session == "s2"

                assert [v.kind for v in audit.violations] == [
                    "unstamped", "session-mismatch", "monotonic-reads",
                    "value-divergence", "read-your-writes"]
            finally:
                audit.close()

    def test_stamp_ahead_of_log_is_hard_error(self, log_dir):
        producer, log, catalog, ner = _seed_log(log_dir)
        with PublisherThread(log, catalog) as publisher:
            audit = AuditLog(publisher.address, ner=ner,
                             tagger_options=TAGGER_OPTIONS)
            try:
                with pytest.raises(ReproError, match="system of record"):
                    audit.observe("s0", "concepts_of_entity", ("thor",),
                                  {}, (),
                                  {"version": producer.store.version + 5,
                                   "session": "s0"})
            finally:
                audit.close()


# ----------------------------------------------------------------------
# crash-path regressions the campaign flushed out
# ----------------------------------------------------------------------
class TestCrashPathFixes:
    def test_dead_worker_scatter_read_recovers_typed(self, log_dir):
        """Bug (a): a scatter read between ``terminate_worker`` and the
        next sync used to surface a raw OSError/ConnectionError from the
        dead worker's stale proxy.  Now the proxy maps connection
        failures to ``ShardUnavailableError`` and the serving view's
        recovery hook respawns the worker and retries — the read
        succeeds and stays byte-identical to the single store."""
        producer, log, catalog, ner = _seed_log(log_dir)
        single = OntologyService(producer, ner=ner,
                                 tagger_options=TAGGER_OPTIONS)
        docs = [("d1", tokenize("thor and hulk"),
                 [tokenize("iron man meets thor"),
                  tokenize("the wasp helps black widow")])]
        with PublisherThread(log, catalog) as publisher:
            with RemoteClusterService(publisher.address, num_shards=2,
                                      ner=ner,
                                      tagger_options=TAGGER_OPTIONS
                                      ) as remote:
                remote.terminate_worker(1)
                # The stale proxy itself raises the *typed* error now.
                with pytest.raises(ShardUnavailableError) as excinfo:
                    remote.replicas[1].describe()
                assert excinfo.value.shard_id == 1
                # The view-level read recovers end to end.
                assert dumps(remote.tag_documents(docs)) == \
                    dumps(single.tag_documents(docs))
                assert dumps(remote.interpret_queries(["best marvel movies"])
                             ) == \
                    dumps(single.interpret_queries(["best marvel movies"]))
                # And the worker really was respawned, not just retried.
                assert remote.replicas[1].describe()["shard"] == 1

    def test_restart_shard_failed_respawn_keeps_old_proxy(self, log_dir):
        """Bug (b): ``restart_shard`` used to close the old proxy before
        the respawn was known-good — a failed respawn left a dead socket
        seated with no retry path.  The swap is all-or-nothing now."""
        producer, log, catalog, ner = _seed_log(log_dir)
        single = OntologyService(producer, ner=ner,
                                 tagger_options=TAGGER_OPTIONS)
        with PublisherThread(log, catalog) as publisher:
            with RemoteClusterService(publisher.address, num_shards=2,
                                      ner=ner,
                                      tagger_options=TAGGER_OPTIONS
                                      ) as remote:
                original_await = remote._await_ready
                attempts = {"count": 0}

                def flaky(expected):
                    attempts["count"] += 1
                    if attempts["count"] == 1:
                        raise ReproError("injected respawn failure")
                    return original_await(expected)

                remote._await_ready = flaky
                try:
                    old_proxy = remote.replicas[1]
                    with pytest.raises(ReproError, match="injected"):
                        remote.restart_shard(1)
                    # The swap never happened: same proxy object seated.
                    assert remote.replicas[1] is old_proxy
                    # The retry path works and serves correctly.
                    line = remote.restart_shard(1)
                    assert line["shard"] == 1
                    assert remote.replicas[1] is not old_proxy
                finally:
                    remote._await_ready = original_await
                queries = ["best marvel movies", "thor review"]
                assert dumps(remote.interpret_queries(queries)) == \
                    dumps(single.interpret_queries(queries))

    def test_reap_escalates_and_refuses_wedged_corpse(self, log_dir):
        """Bug (c): the old restart joined the outgoing worker with a
        timeout but never checked it died — ``_reap`` now escalates
        terminate -> kill and refuses to respawn over a survivor."""

        class FakeProcess:
            pid = 4242
            exitcode = None

            def __init__(self, dies_on_kill):
                self._alive = True
                self._dies_on_kill = dies_on_kill
                self.calls = []

            def is_alive(self):
                return self._alive

            def terminate(self):
                self.calls.append("terminate")

            def kill(self):
                self.calls.append("kill")
                if self._dies_on_kill:
                    self._alive = False
                    self.exitcode = -9

            def join(self, timeout=None):
                self.calls.append("join")

        producer, log, catalog, ner = _seed_log(log_dir)
        with PublisherThread(log, catalog) as publisher:
            with RemoteClusterService(publisher.address, num_shards=2,
                                      ner=ner,
                                      tagger_options=TAGGER_OPTIONS
                                      ) as remote:
                # terminate is ignored -> kill escalation reaps it.
                stubborn = FakeProcess(dies_on_kill=True)
                remote._processes[91] = stubborn
                remote._reap(91)
                assert "kill" in stubborn.calls
                assert 91 not in remote._processes
                # Nothing kills it -> hard refusal, corpse kept visible.
                wedged = FakeProcess(dies_on_kill=False)
                remote._processes[92] = wedged
                with pytest.raises(ReproError, match="wedged"):
                    remote._reap(92)
                assert remote._processes.pop(92) is wedged


# ----------------------------------------------------------------------
# view rehydration across a GC-forced parent re-bootstrap (DeltaGapError)
# ----------------------------------------------------------------------
class TestGapRebootstrapRehydration:
    def test_view_reads_rehydrate_byte_identical(self, log_dir):
        """The parent's routing client is unregistered on purpose, so a
        log GC at the worker/auditor floor strands it: the next sync
        meets ``DeltaGapError`` and rebuilds the router from snapshot +
        tail.  The view catalog trails that rebuild — the next
        view-backed read must rehydrate to byte-identical results."""
        producer, log, catalog, ner = _seed_log(log_dir)
        single = OntologyService(producer, ner=ner,
                                 tagger_options=TAGGER_OPTIONS)
        with PublisherThread(log, catalog) as publisher:
            with RemoteClusterService(publisher.address, num_shards=2,
                                      ner=ner,
                                      tagger_options=TAGGER_OPTIONS
                                      ) as remote:
                for service in (single, remote):
                    service.record_read("u-1", ["marvel movies", "thor"])
                stranded_at = remote.version
                for tag in ("alpha", "beta", "gamma"):
                    delta = _grow(producer, ner, tag)
                    publisher.publish([delta])
                    single.refresh([delta])
                head = producer.store.version
                # Workers advance directly (their registrations move the
                # GC floor to head); the parent stays at stranded_at.
                for replica in remote.replicas:
                    replica.sync(head)
                publisher.call(lambda: catalog.record(producer.store))
                # Prove the prefix is really gone.
                probe = SyncLogClient.connect(*publisher.address)
                try:
                    with pytest.raises(DeltaGapError):
                        probe.fetch(stranded_at)
                finally:
                    probe.close()
                remote.sync()
                assert remote.version == head
                # View-backed reads (interests / recsys ride the view
                # catalog) match the single store byte for byte.
                assert dumps(remote.user_interests("u-1", k=5)) == \
                    dumps(single.user_interests("u-1", k=5))
                assert dumps(remote.recommend_for_user("u-1", k=3)) == \
                    dumps(single.recommend_for_user("u-1", k=3))
                assert dumps(remote.concepts_of_entity("gamma hero")) == \
                    dumps(single.concepts_of_entity("gamma hero"))


# ----------------------------------------------------------------------
# the campaign end to end
# ----------------------------------------------------------------------
class TestCampaign:
    def test_seeded_campaign_runs_clean(self, log_dir):
        """The acceptance gate: a seeded campaign covering worker kills,
        an operator restart, follower delay, log GC under lag, and one
        mid-traffic chunked rebalance completes with zero violations."""
        schedule = generate_schedule(seed=3, steps=12)
        report = run_campaign(schedule, log_dir)
        assert report["violations"] == []
        fault_kinds = {fault["kind"] for fault in report["faults"]}
        assert {"kill_worker", "restart_worker", "delay_follower",
                "heal", "sync_workers", "gc_log"} <= fault_kinds
        rebalance = report["rebalance"]
        assert rebalance is not None
        assert rebalance["transfer_chunks"] >= 1
        assert rebalance["interleaved_read_latencies"], \
            "reads must be served between transfer chunks"
        assert report["reads"] > 0 and report["writes"] > 0
        assert report["final_version"] > 0

    def test_stale_read_backend_is_caught(self, tmp_path, monkeypatch):
        """The negative control: a backend rig that serves a cached
        (stale) ``user_interests`` answer after a newer profile write
        must trip the auditor — read-your-writes, naming the violating
        session — and drop a shrinkable schedule artifact."""

        class StaleInterestsRig:
            """Caches the first user_interests answer per (user, k) and
            serves it forever — a stale read bug in a box."""

            def __init__(self, backend):
                self._backend = backend
                self._cache = {}

            def __getattr__(self, name):
                return getattr(self._backend, name)

            def user_interests(self, user_id, k=10, **kwargs):
                key = (user_id, k)
                if key not in self._cache:
                    self._cache[key] = self._backend.user_interests(
                        user_id, k=k, **kwargs)
                return self._cache[key]

        artifacts = tmp_path / "artifacts"
        monkeypatch.setenv("REPRO_AUDIT_ARTIFACTS", str(artifacts))
        seed_schedule = generate_schedule(seed=1, steps=4)
        seed_op = seed_schedule["ops"][0]
        tags = [entry[1] for entry in seed_op["nodes"]]
        schedule = {
            "seed": 1, "start_shards": 2,
            "ops": [
                seed_op,
                {"op": "write", "session": "s0", "kind": "profile",
                 "user": "u-s0", "tags": tags[:2]},
                {"op": "read", "session": "s0", "kind": "interests",
                 "user": "u-s0", "k": 5},
                {"op": "write", "session": "s0", "kind": "profile",
                 "user": "u-s0", "tags": tags[2:4]},
                {"op": "read", "session": "s0", "kind": "interests",
                 "user": "u-s0", "k": 5},
            ],
        }
        report = run_campaign(schedule, tmp_path / "log",
                              backend_rig=StaleInterestsRig,
                              name="stale-rig")
        kinds = {violation["kind"] for violation in report["violations"]}
        assert "read-your-writes" in kinds
        assert all(violation["session"] == "s0"
                   for violation in report["violations"])
        # The artifact alone reproduces: schedule + report, shrinkable.
        artifact = pathlib.Path(report["artifact"])
        assert artifact.exists()
        payload = json.loads(artifact.read_text())
        assert payload["schedule"]["ops"] == schedule["ops"]
        assert payload["report"]["violations"]


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestCli:
    def test_parser_wiring(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["audit", "--seed", "7", "--steps", "9", "--chunk-nodes", "4"])
        assert args.seed == 7 and args.steps == 9
        assert args.chunk_nodes == 4 and args.func is not None

    def test_malformed_connect_refused(self, capsys):
        from repro.cli import build_parser
        args = build_parser().parse_args(["audit", "--connect", "nonsense"])
        assert args.func(args) == 2
        assert "malformed" in capsys.readouterr().out
