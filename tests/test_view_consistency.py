"""Randomized view-identity harness for the maintained-view layer.

The oracle (DESIGN.md §13): after *every* op of a randomized delta
script, every registered materialized view must be byte-identical
(``rpc.dumps``) to a from-scratch recompute of the same query — on the
single-store service, on the cluster's serving facade, and on every
per-shard posting fragment (whose union must in turn equal the full
postings relation).  This extends the PR-5 consistency discipline from
"responses match" to "the maintained state itself matches", so an
incremental-maintenance bug is caught at the op that introduced it, not
at whichever later probe happens to read the poisoned view.

Scripts come from the same seeded generator as the cluster harness
(``test_cluster_consistency.generate_ops``) — delta batches, serving
probes, profile/story traffic, and one mid-stream rebalance — so a
failing schedule is recorded to ``REPRO_CONSISTENCY_ARTIFACTS`` as a
``views-oplist-*.json`` artifact and shrinks by deleting ops from the
JSON, exactly like the serving-identity harness.
"""

import json
import os
import pathlib

import pytest

from repro.serving.rpc import dumps
from test_cluster_consistency import TAGGER_OPTIONS, _Replay, generate_ops


class _ViewReplay(_Replay):
    """The cluster-consistency replay plus a view-identity check after
    every op: materialized() == recompute() for every catalog entry."""

    def check_views(self, step: int, kind: str) -> None:
        where = f"after op {step} ({kind}) at version {self.cluster.version}"
        for label, service in (("single", self.single),
                               ("cluster", self.cluster._service)):
            for name, view in service.views.items():
                assert dumps(view.materialized()) == \
                    dumps(view.recompute()), \
                    f"view {label}/{name} diverged {where}"
        # Per-shard posting fragments: each identical to its own
        # owned-rows recompute...
        merged: dict = {}
        for replica in self.cluster.replicas:
            fragment = replica.views.get("tag_postings")
            frozen = fragment.materialized()
            assert dumps(frozen) == dumps(fragment.recompute()), \
                f"shard {replica.shard_id} posting fragment diverged {where}"
            for key, ids in frozen.items():
                merged.setdefault(key, set()).update(ids)
        # ...and their scatter-merge equal to the full postings relation
        # (the single service's view over the producer store).
        union = {key: sorted(ids) for key, ids in sorted(merged.items())}
        full = self.single.views.get("tag_postings").recompute()
        assert dumps(union) == dumps(full), \
            f"merged shard fragments != full postings {where}"


def replay_with_view_checks(ops: list, start_shards: int) -> _ViewReplay:
    """Replay a recorded op list, asserting view identity at every step
    (the shrinkable failure artifact replays through this entry point)."""
    replay = _ViewReplay(start_shards)
    for step, spec in enumerate(ops):
        kind = spec["op"]
        if kind == "delta":
            replay.apply_delta(spec)
        elif kind == "rebalance":
            replay.rebalance(spec["num_shards"])
        elif kind == "serve":
            replay.serve(spec)
        elif kind == "profile":
            replay.profile(spec)
        elif kind == "story":
            replay.story(spec)
        else:  # pragma: no cover - scripts are generated
            raise AssertionError(f"unknown scripted op {kind!r}")
        replay.check_views(step, kind)
    return replay


def _artifact_dir() -> "pathlib.Path | None":
    root = os.environ.get("REPRO_CONSISTENCY_ARTIFACTS")
    if not root:
        return None
    path = pathlib.Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def _run_scenario(seed: int, steps: int, start_shards: int,
                  rebalance_to: int) -> None:
    ops = generate_ops(seed, steps, rebalance_to)
    try:
        replay_with_view_checks(ops, start_shards)
    except AssertionError:
        artifacts = _artifact_dir()
        if artifacts is not None:
            name = (f"views-oplist-seed{seed}-s{start_shards}"
                    f"-to{rebalance_to}.json")
            (artifacts / name).write_text(json.dumps(
                {"seed": seed, "start_shards": start_shards,
                 "rebalance_to": rebalance_to, "ops": ops}, indent=1))
            raise AssertionError(
                f"view-identity violation (op list recorded at "
                f"{artifacts / name}; replay with "
                f"replay_with_view_checks(ops, {start_shards}))")
        raise


class TestRandomizedViewIdentity:
    # Growth, shrink, and the degenerate 1-shard cluster, each with a
    # mid-stream rebalance — the rebalance step is where fragment
    # retraction (weight -1 folds) and promotion must cancel exactly.
    @pytest.mark.parametrize("start_shards,rebalance_to,seed", [
        (1, 3, 0),
        (2, 4, 1),
        (3, 5, 2),
        (5, 2, 0),
    ])
    def test_views_stay_byte_identical_under_random_scripts(
            self, start_shards, rebalance_to, seed):
        _run_scenario(seed=seed, steps=8, start_shards=start_shards,
                      rebalance_to=rebalance_to)

    def test_view_op_list_round_trips_through_json(self):
        """The failure artifact is self-sufficient: a reloaded op list
        replays (with view checks) identically."""
        ops = generate_ops(seed=11, steps=6, rebalance_to=3)
        reloaded = json.loads(json.dumps(ops))
        assert reloaded == ops
        replay_with_view_checks(reloaded, start_shards=2)

    def test_rebalance_retracts_exactly_the_moved_fragment_rows(self):
        """Zoomed-in acceptance check for the retraction path: growing
        the ring moves records between shards; every moved node's
        posting rows must leave the source fragment (weight -1) and
        enter the destination fragment (weight +1) with nothing strayed
        — the merged union is invariant across the flip."""
        ops = [spec for spec in generate_ops(seed=5, steps=9,
                                             rebalance_to=4)
               if spec["op"] == "delta"]
        replay = _ViewReplay(start_shards=2)
        for step, spec in enumerate(ops):
            replay.apply_delta(spec)
        before = dumps(replay.single.views.get("tag_postings").recompute())
        replay.rebalance(4)
        replay.check_views(len(ops), "rebalance")
        after = dumps(replay.single.views.get("tag_postings").recompute())
        assert before == after  # ring flips change routing, not content
        moved = replay.cluster.last_rebalance["moved_nodes"]
        assert moved > 0, "growth to 4 shards should move some records"
