"""Tests for repro.baselines."""

import pytest

from repro.baselines.autophrase import AutoPhraseMiner
from repro.baselines.coverrank import CoverRankBaseline
from repro.baselines.lstm_crf import (
    LstmCrfTagger,
    QueryLstmCrf,
    TitleLstmCrf,
    bio_decode,
    bio_encode,
)
from repro.baselines.lstm_tagger import LstmRoleTagger
from repro.baselines.matchers import AlignExtractor, MatchAlignExtractor, MatchExtractor
from repro.baselines.textrank import TextRankExtractor
from repro.errors import TrainingError


QUERIES = [["best", "fuel", "efficient", "cars"], ["fuel", "efficient", "cars"]]
TITLES = [["the", "fuel", "efficient", "cars", "ranked"],
          ["review", "of", "fuel", "efficient", "cars", "today"]]


class TestTextRank:
    def test_extracts_frequent_content_words(self):
        out = TextRankExtractor(top_k=3).extract(QUERIES, TITLES)
        assert "fuel" in out and "cars" in out

    def test_order_follows_appearance(self):
        out = TextRankExtractor(top_k=3).extract(QUERIES, TITLES)
        assert out.index("fuel") < out.index("cars")

    def test_empty_inputs(self):
        assert TextRankExtractor().extract([], []) == []

    def test_top_k_limits_output(self):
        out = TextRankExtractor(top_k=2).extract(QUERIES, TITLES)
        assert len(out) <= 2


class TestAutoPhrase:
    def test_fit_and_extract(self):
        miner = AutoPhraseMiner(min_count=2, top_k=3)
        corpus = QUERIES + TITLES + QUERIES
        miner.fit(corpus)
        out = miner.extract(QUERIES, TITLES)
        assert "cars" in out

    def test_unfitted_fits_on_cluster(self):
        miner = AutoPhraseMiner(min_count=1)
        out = miner.extract(QUERIES, TITLES)
        assert out  # should produce something

    def test_multiword_phrases_scored(self):
        miner = AutoPhraseMiner(min_count=2)
        miner.fit(QUERIES + TITLES + QUERIES + TITLES)
        assert any(len(p) > 1 for p in miner._phrase_scores)


class TestMatchers:
    def test_match_extracts_pattern_slot(self):
        out = MatchExtractor().extract(QUERIES, TITLES)
        assert out == ["fuel", "efficient", "cars"]

    def test_match_empty_when_no_pattern(self):
        out = MatchExtractor().extract([["random", "words", "here"]], [])
        assert out == []

    def test_align_extracts_title_chunk(self):
        out = AlignExtractor().extract(QUERIES, TITLES)
        assert out == ["fuel", "efficient", "cars"]

    def test_matchalign_most_frequent(self):
        out = MatchAlignExtractor().extract(QUERIES, TITLES)
        assert out == ["fuel", "efficient", "cars"]

    def test_match_bootstrap_grows_patterns(self):
        m = MatchExtractor()
        before = len(m.patterns)
        corpus = [
            ["best", "economy", "cars"],
            ["list", "of", "economy", "cars"],
            ["list", "of", "pop", "singers"],
            ["best", "pop", "singers"],
        ]
        m.bootstrap(corpus)
        assert len(m.patterns) > before


class TestBio:
    def test_encode_contiguous(self):
        labels = bio_encode(["a", "b", "c", "d"], ["b", "c"])
        assert labels == [0, 1, 2, 0]

    def test_encode_fallback_membership(self):
        labels = bio_encode(["b", "x", "c"], ["b", "c"])
        assert labels == [1, 0, 1]

    def test_decode_longest_span(self):
        tokens = ["a", "b", "c", "d", "e"]
        labels = [1, 0, 1, 2, 0]
        assert bio_decode(tokens, labels) == ["c", "d"]

    def test_round_trip(self):
        tokens = ["x", "fuel", "efficient", "cars", "y"]
        labels = bio_encode(tokens, ["fuel", "efficient", "cars"])
        assert bio_decode(tokens, labels) == ["fuel", "efficient", "cars"]

    def test_empty(self):
        assert bio_encode([], ["a"]) == []
        assert bio_decode([], []) == []


class TestLstmCrfTagger:
    def test_overfits_single_pattern(self):
        tagger = LstmCrfTagger(embed_dim=12, hidden=8)
        seqs = [["best", "fuel", "efficient", "cars"]] * 4
        labels = [bio_encode(s, ["fuel", "efficient", "cars"]) for s in seqs]
        tagger.fit(seqs, labels, epochs=15, lr=0.05)
        assert tagger.extract(["best", "fuel", "efficient", "cars"]) == [
            "fuel", "efficient", "cars",
        ]

    def test_fit_empty_raises(self):
        with pytest.raises(TrainingError):
            LstmCrfTagger().fit([], [])

    def test_predict_empty(self):
        assert LstmCrfTagger().predict([]) == []

    def test_vocab_grows(self):
        tagger = LstmCrfTagger(embed_dim=8, hidden=4)
        tagger.fit([["a", "b"]], [[0, 0]], epochs=1)
        before = tagger.embedding.weight.data.shape[0]
        tagger.fit([["c", "d", "e"]], [[0, 0, 0]], epochs=1)
        assert tagger.embedding.weight.data.shape[0] > before


class TestVariantWrappers:
    def _examples(self):
        from repro.datasets.examples import MiningExample

        return [
            MiningExample(queries=[q], titles=TITLES,
                          gold_tokens=["fuel", "efficient", "cars"])
            for q in QUERIES * 2
        ]

    def test_query_variant(self):
        model = QueryLstmCrf(embed_dim=12, hidden=8)
        model.fit_examples(self._examples(), epochs=12, lr=0.05)
        out = model.extract(QUERIES, TITLES)
        assert "cars" in out

    def test_title_variant_filters_by_length(self):
        model = TitleLstmCrf(min_len=2, max_len=5, embed_dim=12, hidden=8)
        model.fit_examples(self._examples(), epochs=10, lr=0.05)
        out = model.extract(QUERIES, TITLES)
        assert out == [] or 2 <= len(out) <= 5

    def test_query_variant_empty_queries(self):
        model = QueryLstmCrf(embed_dim=8, hidden=4)
        model.fit_examples(self._examples(), epochs=1)
        assert model.extract([], TITLES) == []


class TestLstmRoleTagger:
    def test_learns_role_pattern(self):
        tagger = LstmRoleTagger(num_classes=3, embed_dim=12, hidden=8)
        seqs = [["apple", "launches", "iphone"]] * 4
        labels = [[1, 2, 1]] * 4
        tagger.fit(seqs, labels, epochs=20, lr=0.05)
        assert tagger.predict(["apple", "launches", "iphone"]) == [1, 2, 1]

    def test_empty_predict(self):
        assert LstmRoleTagger().predict([]) == []

    def test_fit_empty_raises(self):
        with pytest.raises(TrainingError):
            LstmRoleTagger().fit([], [])


class TestCoverRankBaseline:
    def test_unsupervised_fit_noop(self):
        assert CoverRankBaseline().fit_examples([]) == []

    def test_extract_event_subtitle(self):
        queries = [["apple", "launches", "iphone"]]
        titles = [["breaking", ":", "apple", "launches", "iphone", "12", ",",
                   "what", "we", "know", "so", "far"]]
        out = CoverRankBaseline().extract(queries, titles)
        assert out == ["apple", "launches", "iphone", "12"]
