"""Integration tests for the end-to-end GiantPipeline."""

import pytest

from repro import GiantPipeline
from repro.core.ontology import AttentionOntology, EdgeType, NodeType


@pytest.fixture(scope="module")
def pipeline(click_graph, pos_tagger, ner_tagger, sessions, world,
             trained_concept_model, trained_key_element_model):
    categories = sorted({c[2] for c in world.categories})
    pipe = GiantPipeline(
        click_graph, pos_tagger, ner_tagger,
        concept_model=trained_concept_model,
        key_element_model=trained_key_element_model,
        categories=categories,
    )
    pipe.run(sessions=sessions)
    return pipe


class TestPipelineStructure:
    def test_all_node_types_present(self, pipeline):
        stats = pipeline.ontology.stats()
        for node_type in ("category", "concept", "entity", "event", "topic"):
            assert stats[node_type] > 0, stats

    def test_all_edge_types_present(self, pipeline):
        stats = pipeline.ontology.stats()
        assert stats["isA"] > 0
        assert stats["involve"] > 0
        assert stats["correlate"] > 0

    def test_report_populated(self, pipeline):
        report = pipeline.report
        assert report.concepts_mined > 0
        assert report.events_mined > 0
        assert report.entities_registered > 0
        assert set(report.edges) == {"isA", "involve", "correlate"}

    def test_built_exclusively_through_deltas(self, pipeline):
        # Every mutation is recorded: replaying the emitted deltas against
        # a fresh store reproduces the ontology (Table 1/2 counts) exactly.
        assert pipeline.deltas
        assert pipeline.ontology.version == pipeline.deltas[-1].version
        fresh = AttentionOntology()
        for delta in pipeline.deltas:
            fresh.apply_delta(delta)
        assert fresh.stats() == pipeline.ontology.stats()
        assert sorted(n.node_id for n in fresh.nodes()) == sorted(
            n.node_id for n in pipeline.ontology.nodes()
        )

    def test_run_snapshots_store(self, pipeline):
        snaps = pipeline.ontology.store.snapshots()
        assert snaps and snaps[-1].stats == pipeline.ontology.stats()

    def test_seed_split_routes_verbs_to_events(self, pipeline):
        concept_seeds, event_seeds = pipeline.split_seeds(
            ["best fuel efficient cars", "ig team wins the s8 final"]
        )
        assert concept_seeds == ["best fuel efficient cars"]
        assert event_seeds == ["ig team wins the s8 final"]


class TestPipelineQuality:
    def test_recovers_gold_concepts(self, pipeline, world):
        onto = pipeline.ontology
        mined = {n.phrase for n in onto.nodes(NodeType.CONCEPT)}
        aliases = {a for n in onto.nodes(NodeType.CONCEPT) for a in n.aliases}
        gold = set(world.concepts)
        hits = sum(1 for g in gold if g in mined or g in aliases)
        assert hits / len(gold) > 0.5

    def test_concept_entity_edges_mostly_correct(self, pipeline, world):
        onto = pipeline.ontology
        gold = world.gold_concept_entity_pairs()

        def is_correct(concept: str, entity: str) -> bool:
            if (concept, entity) in gold:
                return True
            # CSD-derived ancestors are correct when the concept is a
            # suffix of a gold concept that contains the entity
            # ("animated films" -> frozen via "classic animated films").
            c_tokens = concept.split()
            for g_concept, g_entity in gold:
                if g_entity != entity:
                    continue
                g_tokens = g_concept.split()
                if len(c_tokens) < len(g_tokens) and \
                        g_tokens[-len(c_tokens):] == c_tokens:
                    return True
            return False

        predicted = set()
        for edge in onto.edges(EdgeType.ISA):
            src = onto.node(edge.source)
            dst = onto.node(edge.target)
            if src.node_type == NodeType.CONCEPT and dst.node_type == NodeType.ENTITY:
                predicted.add((src.phrase, dst.phrase))
        if predicted:
            correct = sum(1 for c, e in predicted if is_correct(c, e))
            assert correct / len(predicted) > 0.5

    def test_category_edges_reference_world_categories(self, pipeline, world):
        onto = pipeline.ontology
        leaf_categories = {c[2] for c in world.categories}
        for node in onto.nodes(NodeType.CATEGORY):
            assert node.phrase in leaf_categories

    def test_correlate_edges_between_entities(self, pipeline):
        onto = pipeline.ontology
        for edge in onto.edges(EdgeType.CORRELATE):
            assert onto.node(edge.source).node_type == NodeType.ENTITY
            assert onto.node(edge.target).node_type == NodeType.ENTITY

    def test_ontology_isa_acyclic(self, pipeline):
        # Walk isA edges from every node; a revisit on the path = cycle.
        onto = pipeline.ontology
        adj = {}
        for edge in onto.edges(EdgeType.ISA):
            adj.setdefault(edge.source, []).append(edge.target)

        state: dict[str, int] = {}

        def dfs(node):
            state[node] = 1
            for nxt in adj.get(node, []):
                if state.get(nxt) == 1:
                    return False
                if state.get(nxt) is None and not dfs(nxt):
                    return False
            state[node] = 2
            return True

        assert all(dfs(n) for n in list(adj) if state.get(n) is None)
