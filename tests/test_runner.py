"""Tests for repro.eval.runner."""

import pytest

from repro.datasets.examples import MiningExample
from repro.eval.runner import PhraseMiningExperiment, error_analysis


class PerfectMiner:
    """Echoes the first query (which is the gold phrase in the fixture)."""

    def extract(self, queries, titles):
        return queries[0]


class EmptyMiner:
    def extract(self, queries, titles):
        return []


class FittableMiner:
    def __init__(self):
        self.fitted_with = None

    def fit_examples(self, train, lr=0.1):
        self.fitted_with = (len(train), lr)

    def extract(self, queries, titles):
        return ["wrong"]


@pytest.fixture
def split():
    examples = [
        MiningExample(queries=[["economy", "cars"]], titles=[["x"]],
                      gold_tokens=["economy", "cars"]),
        MiningExample(queries=[["pop", "singers"]], titles=[["y"]],
                      gold_tokens=["pop", "singers"]),
    ]
    return examples, examples


class TestExperiment:
    def test_perfect_method_scores_one(self, split):
        train, test = split
        exp = PhraseMiningExperiment().add("perfect", PerfectMiner())
        results = exp.run(train, test)
        assert results[0].scores.em == 1.0
        assert results[0].scores.coverage == 1.0

    def test_empty_method_zero_coverage(self, split):
        train, test = split
        results = PhraseMiningExperiment().add("empty", EmptyMiner()).run(train, test)
        assert results[0].scores.coverage == 0.0

    def test_fit_called_with_kwargs(self, split):
        train, test = split
        miner = FittableMiner()
        PhraseMiningExperiment().add("fit", miner, lr=0.5).run(train, test)
        assert miner.fitted_with == (2, 0.5)

    def test_rows_format(self, split):
        train, test = split
        exp = PhraseMiningExperiment().add("perfect", PerfectMiner())
        rows = exp.rows(exp.run(train, test))
        assert rows[0][0] == "perfect"
        assert set(rows[0][1]) == {"EM", "F1", "COV"}

    def test_method_without_extract_rejected(self):
        with pytest.raises(TypeError):
            PhraseMiningExperiment().add("bad", object())

    def test_multiple_methods_ordered(self, split):
        train, test = split
        exp = (PhraseMiningExperiment()
               .add("a", PerfectMiner())
               .add("b", EmptyMiner()))
        results = exp.run(train, test)
        assert [r.name for r in results] == ["a", "b"]


class TestErrorAnalysis:
    def test_reports_mismatches(self, split):
        train, test = split
        results = PhraseMiningExperiment().add("f", FittableMiner()).run(train, test)
        errors = error_analysis(results[0], test)
        assert len(errors) == 2
        assert errors[0]["predicted"] == ["wrong"]

    def test_limit_respected(self, split):
        train, test = split
        results = PhraseMiningExperiment().add("f", FittableMiner()).run(train, test)
        assert len(error_analysis(results[0], test, limit=1)) == 1

    def test_perfect_method_no_errors(self, split):
        train, test = split
        results = PhraseMiningExperiment().add("p", PerfectMiner()).run(train, test)
        assert error_analysis(results[0], test) == []
