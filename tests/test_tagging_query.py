"""Tests for repro.apps.tagging and repro.apps.query."""

import pytest

from repro.apps.query import QueryUnderstander
from repro.apps.tagging import DocumentTagger
from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.text.ner import NerTagger
from repro.text.tokenizer import tokenize


@pytest.fixture
def small_ontology():
    onto = AttentionOntology()
    concept = onto.add_node(
        NodeType.CONCEPT, "marvel superhero movies",
        payload={"context_titles": [tokenize("the best marvel superhero movies ranked"),
                                    tokenize("marvel superhero movies you must watch")]},
    )
    for name in ("iron man", "captain america", "black panther"):
        entity = onto.add_node(NodeType.ENTITY, name)
        onto.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
    onto.add_node(NodeType.EVENT, "black panther premiere breaks box office record")
    onto.add_node(NodeType.TOPIC, "box office record events")
    a = onto.find(NodeType.ENTITY, "iron man")
    b = onto.find(NodeType.ENTITY, "captain america")
    onto.add_edge(a.node_id, b.node_id, EdgeType.CORRELATE)
    return onto


@pytest.fixture
def ner():
    t = NerTagger()
    for name in ("iron man", "captain america", "black panther"):
        t.register(name, "WORK")
    return t


@pytest.fixture
def tagger(small_ontology, ner):
    return DocumentTagger(small_ontology, ner, coherence_threshold=0.01,
                          lcs_threshold=0.6)


class TestConceptTagging:
    def test_tags_concept_not_mentioned(self, tagger):
        # Document names two member entities, never the concept phrase.
        title = tokenize("iron man and captain america reviewed")
        body = tokenize("both iron man and captain america delight fans")
        tags = tagger.tag_concepts(title, body)
        assert tags and tags[0][0] == "marvel superhero movies"

    def test_no_entities_no_tags(self, tagger):
        tags = tagger.tag_concepts(tokenize("cooking pasta at home"), [])
        assert tags == []

    def test_key_entities_deduplicated(self, tagger):
        tokens = tokenize("iron man meets iron man")
        assert tagger.key_entities(tokens) == ["iron man"]

    def test_inference_path_via_context_words(self, small_ontology, ner):
        # Entity with no isA parent: concept inferred from context words that
        # are substrings of concept phrases (Eq. 12-14).
        onto = small_ontology
        onto.add_node(NodeType.ENTITY, "spiderman")
        ner.register("spiderman", "WORK")
        tagger = DocumentTagger(onto, ner, inference_threshold=0.01)
        title = tokenize("spiderman story")
        body = tokenize("spiderman joins the marvel superhero movies universe .")
        tags = tagger.tag_concepts(title, body)
        assert any(t == "marvel superhero movies" for t, _s in tags)


class TestEventTagging:
    def test_event_tagged_by_lcs(self, tagger):
        title = tokenize("black panther premiere breaks box office record , report")
        tags = tagger.tag_events(title, tokenize("the premiere was huge"))
        assert tags and tags[0][0] == "black panther premiere breaks box office record"

    def test_unrelated_title_not_tagged(self, tagger):
        tags = tagger.tag_events(tokenize("cooking pasta tonight"), [])
        assert tags == []

    def test_topic_tagging(self, tagger):
        title = tokenize("box office record events keep coming")
        tags = tagger.tag_topics(title, [])
        assert tags and tags[0][0] == "box office record events"

    def test_tag_full_document(self, tagger):
        doc = tagger.tag(
            "doc1",
            tokenize("iron man and captain america : a retrospective"),
            [tokenize("iron man and captain america shaped the genre")],
        )
        assert doc.doc_id == "doc1"
        assert "marvel superhero movies" in doc.concept_tags


class TestQueryUnderstanding:
    def test_concept_query_rewrites(self, small_ontology):
        qu = QueryUnderstander(small_ontology)
        analysis = qu.analyze("best marvel superhero movies")
        assert analysis.conveys_concept
        assert analysis.rewrites
        assert all(r.startswith("best marvel superhero movies ") for r in analysis.rewrites)

    def test_entity_query_recommends_correlated(self, small_ontology):
        qu = QueryUnderstander(small_ontology)
        analysis = qu.analyze("iron man review")
        assert analysis.conveys_entity
        assert "captain america" in analysis.recommendations

    def test_unknown_query(self, small_ontology):
        qu = QueryUnderstander(small_ontology)
        analysis = qu.analyze("gardening tips")
        assert not analysis.conveys_concept
        assert not analysis.conveys_entity
        assert analysis.rewrites == []

    def test_most_specific_concept_preferred(self, small_ontology):
        onto = small_ontology
        onto.add_node(NodeType.CONCEPT, "movies")
        qu = QueryUnderstander(onto)
        analysis = qu.analyze("best marvel superhero movies")
        assert analysis.concepts[0] == "marvel superhero movies"

    def test_rewrite_cap(self, small_ontology):
        qu = QueryUnderstander(small_ontology, max_rewrites=2)
        analysis = qu.analyze("marvel superhero movies")
        assert len(analysis.rewrites) <= 2
