"""Tests for repro.nn.data."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.data import batch_indices, epoch_order, pad_sequences, stratified_split


class TestBatchIndices:
    def test_covers_all_indices(self):
        seen = np.concatenate(list(batch_indices(10, 3, rng=0)))
        assert sorted(seen.tolist()) == list(range(10))

    def test_batch_sizes(self):
        batches = list(batch_indices(10, 4, shuffle=False))
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_no_shuffle_ordered(self):
        batches = list(batch_indices(5, 2, shuffle=False))
        assert batches[0].tolist() == [0, 1]

    def test_empty(self):
        assert list(batch_indices(0, 3)) == []

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            list(batch_indices(5, 0))


class TestEpochOrder:
    def test_deterministic(self):
        assert np.array_equal(epoch_order(8, 3, seed=1), epoch_order(8, 3, seed=1))

    def test_epochs_differ(self):
        assert not np.array_equal(epoch_order(8, 0), epoch_order(8, 1))

    def test_is_permutation(self):
        assert sorted(epoch_order(6, 5).tolist()) == list(range(6))


class TestStratifiedSplit:
    def test_proportions_kept(self):
        items = list(range(100))
        labels = ["a"] * 80 + ["b"] * 20
        train, test = stratified_split(items, labels, test_frac=0.25, rng=0)
        test_b = sum(1 for i in test if i >= 80)
        assert test_b == 5  # 25% of 20

    def test_every_label_in_both_sides(self):
        items = list(range(4))
        labels = ["a", "a", "b", "b"]
        train, test = stratified_split(items, labels, test_frac=0.5, rng=0)
        assert {labels[i] for i in train} == {"a", "b"}
        assert {labels[i] for i in test} == {"a", "b"}

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            stratified_split([1], [], test_frac=0.5)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            stratified_split([1], ["a"], test_frac=1.5)


class TestPadSequences:
    def test_shapes_and_mask(self):
        out, mask = pad_sequences([[1, 2], [3]], pad_value=-1)
        assert out.shape == (2, 2)
        assert out[1, 1] == -1
        assert mask.tolist() == [[True, True], [True, False]]

    def test_empty(self):
        out, mask = pad_sequences([])
        assert out.shape == (0, 0)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 30), st.integers(1, 10))
def test_batches_partition(n, batch_size):
    seen = np.concatenate(list(batch_indices(n, batch_size, rng=0)))
    assert sorted(seen.tolist()) == list(range(n))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from("ab"), min_size=4, max_size=40))
def test_stratified_split_partitions(labels):
    items = list(range(len(labels)))
    train, test = stratified_split(items, labels, test_frac=0.3, rng=0)
    assert sorted(train + test) == items
