"""Tests for repro.graph.qtig (Algorithm 2) and its decoding variant."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.qtig import EOS, SOS, QueryTitleGraph, build_qtig
from repro.text.dependency import DependencyParser
from repro.text.pos import PosTagger


@pytest.fixture
def simple_graph():
    queries = [["best", "fuel", "efficient", "cars"]]
    titles = [["the", "fuel", "efficient", "cars", "ranked"],
              ["fuel", "efficient", "famous", "cars"]]
    return build_qtig(queries, titles)


class TestConstruction:
    def test_sos_eos_present(self, simple_graph):
        assert simple_graph.tokens[0] == SOS
        assert simple_graph.tokens[1] == EOS

    def test_tokens_merged(self, simple_graph):
        # "fuel" appears in all three texts but is one node.
        assert simple_graph.tokens.count("fuel") == 1

    def test_adjacent_tokens_get_seq_edge(self, simple_graph):
        u = simple_graph.node_id("fuel")
        v = simple_graph.node_id("efficient")
        assert simple_graph.edges.get((u, v)) == "seq"

    def test_first_edge_kept_policy(self, simple_graph):
        # "efficient"->"cars" adjacent in query (seq wins); the later
        # dependency between them must not overwrite it.
        u = simple_graph.node_id("efficient")
        v = simple_graph.node_id("cars")
        labels = [simple_graph.edges.get((u, v)), simple_graph.edges.get((v, u))]
        assert "seq" in labels

    def test_each_pair_single_edge(self, simple_graph):
        seen = set()
        for (u, v) in simple_graph.edges:
            assert frozenset((u, v)) not in seen
            seen.add(frozenset((u, v)))

    def test_keep_all_edges_ablation_has_more_edges(self):
        queries = [["best", "fuel", "efficient", "cars"]]
        titles = [["cars", "fuel", "review"]]
        normal = build_qtig(queries, titles)
        ablated = build_qtig(queries, titles, keep_all_edges=True)
        assert len(ablated.edges) >= len(normal.edges)

    def test_dependency_edges_present(self):
        tagger = PosTagger()
        parser = DependencyParser(tagger)
        # "win" -> "races" is a non-adjacent dobj arc (seq edges cover the
        # adjacent pairs), so a typed dependency edge must appear.
        graph = build_qtig([["cars", "win", "the", "big", "races"]], [],
                           parser=parser)
        labels = set(graph.edges.values())
        assert "dobj" in labels

    def test_texts_recorded_with_sos_eos(self, simple_graph):
        for text in simple_graph.texts:
            assert text[0] == simple_graph.sos_id
            assert text[-1] == simple_graph.eos_id

    def test_unknown_token_raises(self, simple_graph):
        with pytest.raises(GraphError):
            simple_graph.node_id("nope")

    def test_empty_inputs(self):
        graph = build_qtig([], [])
        assert graph.num_nodes == 2


class TestAdjacencyMatrices:
    def test_shapes_and_relations(self, simple_graph):
        mats, names = simple_graph.adjacency_matrices()
        n = simple_graph.num_nodes
        assert all(m.shape == (n, n) for m in mats)
        assert len(mats) == len(names)
        assert len(mats) % 2 == 0  # forward + inverse per label

    def test_fixed_vocab_indexing(self, simple_graph):
        vocab = ["seq", "det", "amod"]
        mats, names = simple_graph.adjacency_matrices(vocab)
        assert len(mats) == 6
        assert names[0] == "seq"
        assert names[1] == "seq_inv"

    def test_forward_inverse_are_transposed_patterns(self, simple_graph):
        mats, names = simple_graph.adjacency_matrices(["seq"])
        fwd = mats[0] > 0
        inv = mats[1] > 0
        assert np.array_equal(fwd, inv.T)

    def test_rows_normalised(self, simple_graph):
        mats, _names = simple_graph.adjacency_matrices()
        for m in mats:
            sums = m.sum(axis=1)
            assert np.all((np.isclose(sums, 0.0)) | (np.isclose(sums, 1.0)))


class TestDecodingVariant:
    def test_sos_connects_to_first_positive(self, simple_graph):
        positives = {simple_graph.node_id("fuel"), simple_graph.node_id("cars")}
        succ = simple_graph.decoding_adjacency(positives)
        assert simple_graph.node_id("fuel") in succ[simple_graph.sos_id]

    def test_last_positive_connects_to_eos(self, simple_graph):
        positives = {simple_graph.node_id("cars")}
        succ = simple_graph.decoding_adjacency(positives)
        assert simple_graph.eos_id in succ[simple_graph.node_id("cars")]

    def test_seq_edges_unidirectional(self, simple_graph):
        positives = {simple_graph.node_id("fuel")}
        succ = simple_graph.decoding_adjacency(positives)
        fuel = simple_graph.node_id("fuel")
        efficient = simple_graph.node_id("efficient")
        assert efficient in succ[fuel]
        assert fuel not in succ[efficient]

    def test_distances_follow_text_order(self, simple_graph):
        fuel = simple_graph.node_id("fuel")
        cars = simple_graph.node_id("cars")
        positives = [fuel, cars]
        nodes = [simple_graph.sos_id, fuel, cars, simple_graph.eos_id]
        dist = simple_graph.decoding_distances(nodes, positives)
        # fuel -> cars is 2 hops (fuel, efficient, cars); cars -> fuel needs
        # a different text path or is unreachable (penalty).
        assert dist[1, 2] == 2.0
        assert dist[2, 1] > dist[1, 2]

    def test_diagonal_zero(self, simple_graph):
        nodes = [simple_graph.sos_id, simple_graph.node_id("cars"), simple_graph.eos_id]
        dist = simple_graph.decoding_distances(nodes, [simple_graph.node_id("cars")])
        assert np.all(np.diag(dist) == 0.0)

    def test_unreachable_gets_penalty(self, simple_graph):
        # eos has no outgoing edges, so eos -> anything is the penalty.
        cars = simple_graph.node_id("cars")
        nodes = [simple_graph.sos_id, cars, simple_graph.eos_id]
        dist = simple_graph.decoding_distances(nodes, [cars])
        penalty = 2 * simple_graph.num_nodes + 1
        assert dist[2, 1] == penalty
