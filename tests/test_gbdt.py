"""Tests for repro.nn.gbdt."""

import numpy as np
import pytest

from repro.nn.gbdt import DecisionTreeRegressor, GradientBoostedClassifier


class TestDecisionTree:
    def test_fits_step_function(self):
        x = np.linspace(0, 1, 50)[:, None]
        y = (x[:, 0] > 0.5).astype(float)
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        pred = tree.predict(x)
        assert np.abs(pred - y).max() < 0.01

    def test_constant_target(self):
        x = np.random.default_rng(0).standard_normal((10, 2))
        tree = DecisionTreeRegressor().fit(x, np.ones(10))
        assert np.allclose(tree.predict(x), 1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.ones((1, 2)))

    def test_bad_shapes_raise(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.ones(5), np.ones(5))
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.ones((5, 2)), np.ones(4))

    def test_single_row_prediction(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        tree = DecisionTreeRegressor(max_depth=1, min_samples_leaf=1).fit(x, y)
        assert tree.predict(np.array([2.5]))[0] == pytest.approx(1.0)


class TestGBDT:
    def test_learns_xor(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(200, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
        clf = GradientBoostedClassifier(n_estimators=40, max_depth=3).fit(x, y)
        assert (clf.predict(x) == y).mean() > 0.95

    def test_probabilities_in_range(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((50, 3))
        y = (x[:, 0] > 0).astype(int)
        clf = GradientBoostedClassifier(n_estimators=10).fit(x, y)
        proba = clf.predict_proba(x)
        assert np.all(proba >= 0) and np.all(proba <= 1)

    def test_single_class_degenerates_to_prior(self):
        x = np.random.default_rng(0).standard_normal((10, 2))
        clf = GradientBoostedClassifier().fit(x, np.ones(10))
        assert np.all(clf.predict(x) == 1)

    def test_more_estimators_do_not_hurt_train_fit(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((100, 2))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        small = GradientBoostedClassifier(n_estimators=3).fit(x, y)
        large = GradientBoostedClassifier(n_estimators=30).fit(x, y)
        assert (large.predict(x) == y).mean() >= (small.predict(x) == y).mean()

    def test_1d_input_to_predict(self):
        x = np.random.default_rng(0).standard_normal((20, 2))
        y = (x[:, 0] > 0).astype(int)
        clf = GradientBoostedClassifier(n_estimators=5).fit(x, y)
        assert clf.predict(x[0]).shape == (1,)

    def test_bad_shapes_raise(self):
        with pytest.raises(ValueError):
            GradientBoostedClassifier().fit(np.ones((5, 2)), np.ones(4))
