"""Tests for repro.nn.layers and repro.nn.optim."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn import functional as F
from repro.nn.layers import Dropout, Embedding, Linear, Module, Parameter, ReLU, Sequential, Tanh
from repro.nn.optim import SGD, Adam


class TestModule:
    def test_parameters_discovered_recursively(self):
        class Net(Module):
            def __init__(self):
                self.fc1 = Linear(2, 3)
                self.list = [Linear(3, 3)]
                self.map = {"x": Linear(3, 1)}

        net = Net()
        params = list(net.parameters())
        assert len(params) == 6  # three layers x (weight, bias)

    def test_num_parameters(self):
        assert Linear(2, 3).num_parameters() == 2 * 3 + 3

    def test_train_eval_mode_propagates(self):
        seq = Sequential(Linear(2, 2), Dropout(0.5))
        seq.eval()
        assert not seq.modules[1].training
        seq.train()
        assert seq.modules[1].training

    def test_state_dict_round_trip(self):
        net = Sequential(Linear(2, 3), Linear(3, 1))
        state = net.state_dict()
        for p in net.parameters():
            p.data += 1.0
        net.load_state_dict(state)
        fresh = net.state_dict()
        for key in state:
            assert np.allclose(state[key], fresh[key])

    def test_load_state_dict_shape_mismatch(self):
        net = Linear(2, 3)
        state = {k: np.zeros((1, 1)) for k in net.state_dict()}
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_load_state_dict_missing_key(self):
        net = Linear(2, 3)
        with pytest.raises(KeyError):
            net.load_state_dict({})


class TestLayers:
    def test_linear_shape(self):
        out = Linear(4, 2)(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)

    def test_linear_no_bias(self):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_embedding_lookup(self):
        emb = Embedding(5, 3)
        out = emb([1, 1, 4])
        assert out.shape == (3, 3)
        assert np.allclose(out.data[0], out.data[1])

    def test_relu_tanh(self):
        x = Tensor(np.array([-1.0, 2.0]))
        assert np.allclose(ReLU()(x).data, [0.0, 2.0])
        assert np.allclose(Tanh()(x).data, np.tanh([-1.0, 2.0]))

    def test_dropout_eval_identity(self):
        d = Dropout(0.9)
        d.eval()
        x = Tensor(np.ones(100))
        assert np.allclose(d(x).data, 1.0)

    def test_dropout_train_scales(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        out = d(Tensor(np.ones(1000)))
        # Kept values are scaled by 1/(1-p) = 2.
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


def _fit_linear(optimizer_factory, steps=200):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((32, 3))
    true_w = np.array([[1.0], [-2.0], [0.5]])
    y = x @ true_w
    layer = Linear(3, 1, rng=rng)
    opt = optimizer_factory(layer.parameters())
    for _step in range(steps):
        opt.zero_grad()
        pred = layer(Tensor(x))
        loss = F.mse(pred, y)
        loss.backward()
        opt.step()
    return np.abs(layer.weight.data - true_w).max()


class TestOptim:
    def test_sgd_converges(self):
        assert _fit_linear(lambda p: SGD(p, lr=0.1)) < 0.01

    def test_sgd_momentum_converges(self):
        assert _fit_linear(lambda p: SGD(p, lr=0.05, momentum=0.9)) < 0.01

    def test_adam_converges(self):
        assert _fit_linear(lambda p: Adam(p, lr=0.05)) < 0.01

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_clip_grad_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        opt = SGD([p], lr=0.1)
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.ones(2) * 10)
        p.grad = np.zeros(2)
        SGD([p], lr=0.1, weight_decay=1.0).step()
        assert np.all(p.data < 10)
