"""Tests for repro.serving: OntologyService and the LRU cache."""

import pytest

from repro.apps.tagging import DocumentTagger
from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.errors import DeltaGapError, ReproError
from repro.serving import LruCache, OntologyService
from repro.text.ner import NerTagger
from repro.text.tokenizer import tokenize


@pytest.fixture
def small_ontology():
    onto = AttentionOntology()
    concept = onto.add_node(
        NodeType.CONCEPT, "marvel superhero movies",
        payload={"context_titles": [tokenize("best marvel superhero movies")]},
    )
    for name in ("iron man", "captain america", "black panther"):
        entity = onto.add_node(NodeType.ENTITY, name)
        onto.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
    onto.add_node(NodeType.EVENT, "black panther premiere breaks box office record")
    a = onto.find(NodeType.ENTITY, "iron man")
    b = onto.find(NodeType.ENTITY, "captain america")
    onto.add_edge(a.node_id, b.node_id, EdgeType.CORRELATE)
    return onto


@pytest.fixture
def ner():
    t = NerTagger()
    for name in ("iron man", "captain america", "black panther"):
        t.register(name, "WORK")
    return t


@pytest.fixture
def service(small_ontology, ner):
    return OntologyService(
        small_ontology, ner=ner,
        tagger_options={"coherence_threshold": 0.01, "lcs_threshold": 0.6},
    )


class TestLruCache:
    def test_get_put_and_hit_counters(self):
        cache = LruCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats["hits"] == 1 and cache.stats["misses"] == 1

    def test_eviction_order(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_get_or_compute(self):
        cache = LruCache(maxsize=2)
        assert cache.get_or_compute("k", lambda: 41) == 41
        assert cache.get_or_compute("k", lambda: 42) == 41

    def test_bad_maxsize_rejected(self):
        with pytest.raises(ValueError):
            LruCache(maxsize=0)


class TestBatchedServing:
    def test_tag_documents_matches_direct_tagger(self, small_ontology, ner,
                                                 service):
        title = tokenize("iron man and captain america reviewed")
        sentences = [tokenize("both iron man and captain america delight fans")]
        [served] = service.tag_documents([("d1", title, sentences)])
        direct = DocumentTagger(small_ontology, ner, coherence_threshold=0.01,
                                lcs_threshold=0.6).tag("d1", title, sentences)
        assert served.concepts == direct.concepts
        assert served.events == direct.events
        assert served.topics == direct.topics

    def test_tag_documents_accepts_objects(self, service):
        class Doc:
            doc_id = "d2"
            title_tokens = tokenize("black panther premiere breaks box office record")
            sentences = [tokenize("a huge premiere")]

        [tagged] = service.tag_documents([Doc()])
        assert tagged.doc_id == "d2"
        assert tagged.event_tags

    def test_tagging_without_ner_rejected(self, small_ontology):
        service = OntologyService(small_ontology)
        with pytest.raises(ReproError):
            service.tag_documents([("d", [], [])])

    def test_interpret_queries_batch(self, service):
        first, second = service.interpret_queries(
            ["best marvel superhero movies", "iron man review"]
        )
        assert first.conveys_concept and first.rewrites
        assert second.conveys_entity
        assert "captain america" in second.recommendations

    def test_serving_counters(self, service):
        service.interpret_queries(["iron man review"])
        service.tag_documents([("d", tokenize("iron man story"), [])])
        stats = service.stats()
        assert stats["queries_interpreted"] == 1
        assert stats["documents_tagged"] == 1
        assert stats["ontology"]["concept"] == 1


class TestNeighborhoodCache:
    def test_neighborhood_expansion(self, service, small_ontology):
        concept = small_ontology.find(NodeType.CONCEPT, "marvel superhero movies")
        one_hop = service.neighborhood(concept.node_id, depth=1)
        assert len(one_hop) == 3  # the three member entities
        two_hop = service.neighborhood(concept.node_id, depth=2)
        assert set(one_hop) <= set(two_hop)

    def test_neighborhood_cached(self, service, small_ontology):
        concept = small_ontology.find(NodeType.CONCEPT, "marvel superhero movies")
        service.neighborhood(concept.node_id)
        before = service.stats()["cache"]["hits"]
        service.neighborhood(concept.node_id)
        assert service.stats()["cache"]["hits"] == before + 1

    def test_cache_invalidated_by_version_bump(self, service, small_ontology):
        concept = small_ontology.find(NodeType.CONCEPT, "marvel superhero movies")
        assert len(service.neighborhood(concept.node_id)) == 3
        spiderman = small_ontology.add_node(NodeType.ENTITY, "spiderman")
        small_ontology.add_edge(concept.node_id, spiderman.node_id, EdgeType.ISA)
        assert len(service.neighborhood(concept.node_id)) == 4

    def test_concepts_of_entity_cached(self, service):
        assert service.concepts_of_entity("iron man") == (
            "marvel superhero movies",
        )
        assert service.concepts_of_entity("unknown entity") == ()


class TestProfileEndpoints:
    def test_record_read_then_recommend_inferred_tags(self, service):
        service.record_read("u1", ["iron man"])
        recommended = dict(service.recommend_for_user("u1"))
        # Hidden interests: the isA parent concept and the correlate peer.
        assert "marvel superhero movies" in recommended
        assert "captain america" in recommended

    def test_user_interests_filter_by_type(self, service):
        service.record_read("u1", ["iron man"])
        concepts = service.user_interests("u1", node_type=NodeType.CONCEPT)
        assert [phrase for phrase, _w in concepts] == [
            "marvel superhero movies"]

    def test_recommendations_served_from_maintained_view(self, service):
        """Recommendations are a prefix of the maintained per-user
        ranked list — repeated reads are stable lookups that never touch
        the LRU, and a new profile read updates the view immediately."""
        service.record_read("u1", ["iron man"])
        first = service.recommend_for_user("u1")
        before = service.stats()["cache"]
        assert service.recommend_for_user("u1") == first
        after = service.stats()["cache"]
        assert (after["hits"], after["misses"]) == (
            before["hits"], before["misses"])
        # A new read refreshes the maintained list in place.
        service.record_read("u1", ["black panther"])
        second = service.recommend_for_user("u1")
        assert first != second
        views = service.stats()["views"]
        assert views["views"] == 3 and not views["stale"]

    def test_profiles_counted_in_stats(self, service):
        service.record_read("u1", ["iron man"])
        service.record_read("u2", ["black panther"])
        assert service.stats()["profiles"] == 2


class TestStoryEndpoints:
    @staticmethod
    def _events():
        from repro.apps.story_tree import EventRecord

        return [
            EventRecord("black panther premiere announced", "announce",
                        ["black panther"], day=0),
            EventRecord("black panther premiere breaks records", "break",
                        ["black panther"], day=1),
            EventRecord("black panther premiere announced worldwide",
                        "announce", ["black panther"], day=2),
        ]

    def test_track_events_and_follow_ups(self, service):
        stories = service.track_events(self._events())
        assert stories >= 1
        follow = service.follow_ups("black panther premiere announced")
        assert [e.day for e in follow] == sorted(e.day for e in follow)
        assert any(e.phrase == "black panther premiere announced worldwide"
                   for e in follow)
        assert service.stats()["events_tracked"] == 3

    def test_stats_distinguish_empty_tracker_from_no_tracker(self, service):
        """Regression: truthiness on a tracker with ``__len__`` made an
        instantiated-but-empty tracker look like no tracker at all;
        stats must use ``is not None`` and report None vs 0."""
        assert service.stats()["stories_tracked"] is None
        assert service.track_events([]) == 0
        assert service.stats()["stories_tracked"] == 0
        service.track_events(self._events())
        assert service.stats()["stories_tracked"] >= 1

    def test_follow_ups_served_from_maintained_view(self, service):
        """Follow-ups read the maintained (story, phrase) sequences:
        repeated reads are stable lookups without LRU traffic, and newly
        routed events appear immediately (no revision-keyed cache)."""
        events = self._events()
        service.track_events(events[:2])
        phrase = "black panther premiere announced"
        first = service.follow_ups(phrase)
        before = service.stats()["cache"]
        assert service.follow_ups(phrase) == first
        after = service.stats()["cache"]
        assert (after["hits"], after["misses"]) == (
            before["hits"], before["misses"])
        # Newly tracked events extend the maintained sequence in place.
        service.track_events(events[2:])
        assert len(service.follow_ups(phrase)) > len(first)


class TestDeltaRefresh:
    def test_refresh_from_recorded_history(self, ner):
        producer = AttentionOntology()
        producer.begin_delta("build")
        concept = producer.add_node(NodeType.CONCEPT, "space probes")
        entity = producer.add_node(NodeType.ENTITY, "voyager 1")
        producer.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
        first = producer.commit_delta()

        replica = OntologyService(AttentionOntology(), ner=ner)
        assert replica.refresh([first]) == 1
        assert replica.concepts_of_entity("voyager 1") == ("space probes",)

        producer.begin_delta("day2")
        other = producer.add_node(NodeType.ENTITY, "voyager 2")
        producer.add_edge(concept.node_id, other.node_id, EdgeType.ISA)
        second = producer.commit_delta()

        # Old cache entry is version-keyed; refresh makes new data visible.
        assert replica.refresh([first, second]) == 1  # first already applied
        assert replica.concepts_of_entity("voyager 2") == ("space probes",)
        assert replica.stats()["deltas_applied"] == 2

    def test_refresh_gap_raises_before_touching_store(self, ner):
        """Regression: a gapped stream must raise a serving-level
        DeltaGapError naming the missing range *before* the gapped
        delta applies any op — the contiguous prefix stands and the
        missing batches can simply be re-delivered."""
        producer = AttentionOntology()
        producer.begin_delta("build")
        concept = producer.add_node(NodeType.CONCEPT, "space probes")
        first = producer.commit_delta()
        producer.begin_delta("day2")
        entity = producer.add_node(NodeType.ENTITY, "voyager 1")
        producer.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
        second = producer.commit_delta()
        producer.begin_delta("day3")
        other = producer.add_node(NodeType.ENTITY, "voyager 2")
        producer.add_edge(concept.node_id, other.node_id, EdgeType.ISA)
        third = producer.commit_delta()

        replica = OntologyService(AttentionOntology(), ner=ner)
        with pytest.raises(DeltaGapError) as excinfo:
            replica.refresh([first, third])  # second is missing
        assert (f"missing versions {first.version + 1}.."
                f"{third.base_version}") in str(excinfo.value)
        # The contiguous prefix was fully applied, the gapped delta
        # cleanly rejected: nothing of it reached the store.
        assert replica.version == first.version
        assert replica.stats()["deltas_applied"] == 1
        # Re-delivering the missing range completes the refresh.
        assert replica.refresh([second, third]) == 2
        assert replica.concepts_of_entity("voyager 1") == ("space probes",)
        assert replica.concepts_of_entity("voyager 2") == ("space probes",)

    def test_refresh_rejects_tail_straddling_replica_version(self, ner):
        """Regression: a batch whose base predates the replica's version
        while its end is ahead (a tail older than the snapshot the
        replica bootstrapped from) must raise DeltaGapError naming the
        already-applied overlap, not fall through to a raw store error
        — and nothing of it may apply."""
        producer = AttentionOntology()
        producer.begin_delta("build")
        concept = producer.add_node(NodeType.CONCEPT, "space probes")
        first = producer.commit_delta()
        producer.begin_delta("day2")
        entity = producer.add_node(NodeType.ENTITY, "voyager 1")
        producer.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
        second = producer.commit_delta()

        from repro.core.store import OntologyDelta

        straddling = OntologyDelta(
            stage="merged", base_version=first.base_version,
            version=second.version, ops=first.ops + second.ops)
        replica = OntologyService(AttentionOntology(), ner=ner)
        replica.refresh([first])
        with pytest.raises(DeltaGapError, match="double-apply") as excinfo:
            replica.refresh([straddling])
        assert f"{first.base_version + 1}..{first.version}" in \
            str(excinfo.value)
        assert replica.version == first.version
        # The well-formed tail still applies afterwards.
        assert replica.refresh([second]) == 1
        assert replica.concepts_of_entity("voyager 1") == ("space probes",)

    def test_refresh_updates_query_interpretation(self, ner):
        producer = AttentionOntology()
        producer.begin_delta("build")
        concept = producer.add_node(NodeType.CONCEPT, "space probes")
        entity = producer.add_node(NodeType.ENTITY, "voyager 1")
        producer.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
        delta = producer.commit_delta()

        replica = OntologyService(AttentionOntology(), ner=ner)
        assert not replica.interpret_queries(["space probes"])[0].conveys_concept
        replica.refresh([delta])
        analysis = replica.interpret_queries(["famous space probes"])[0]
        assert analysis.conveys_concept
        assert analysis.rewrites == ["famous space probes voyager 1"]
