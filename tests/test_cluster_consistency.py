"""Randomized cluster-consistency harness for consistent-hash rebalancing.

The oracle (DESIGN.md §9): every serving response must be byte-identical
(``rpc.dumps``) between a single :class:`OntologyService` and the
sharded :class:`ClusterService` at the same stream version — before,
during, and after a mid-stream ring-epoch rebalance.  This is the
black-box consistency-checking discipline: the sharded system is
trustworthy exactly when reads under updates are indistinguishable from
the unsharded baseline.

Scenarios are *generated* from a seeded RNG as a *recorded op list* — a
JSON-able script of delta batches, serving probes, profile/story
traffic, and one mid-stream rebalance — then replayed.  On failure the
op list is written to ``REPRO_CONSISTENCY_ARTIFACTS`` (when set; CI
uploads it), so a failing schedule reproduces from the artifact alone
(`replay_op_list`) and shrinks by deleting ops from the JSON.

The remote crash test spawns real worker processes; the module is a
real file, so the ``spawn`` start method can re-import it safely.
"""

import json
import os
import pathlib

import pytest

from repro.apps.story_tree import EventRecord
from repro.cluster import ClusterService, HashRing, RemoteClusterService
from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.core.store import OntologyStore
from repro.replication import DeltaLog, PublisherThread, SnapshotCatalog
from repro.serving import OntologyService
from repro.serving.rpc import dumps
from repro.text.ner import NerTagger
from repro.text.tokenizer import tokenize

TAGGER_OPTIONS = {"coherence_threshold": 0.01, "lcs_threshold": 0.6}

_ADJS = ["solar", "lunar", "hyper", "rapid", "silent", "crimson",
         "golden", "arctic"]
_NOUNS = ["engine", "market", "festival", "league", "garden", "reactor",
          "summit", "archive"]


# ----------------------------------------------------------------------
# op-script generation (pure: same seed -> same JSON-able list)
# ----------------------------------------------------------------------
def generate_ops(seed: int, steps: int, rebalance_to: int) -> list:
    """A recorded op list: delta batches, serving probes, profile/story
    traffic, and exactly one mid-stream rebalance."""
    import random

    rng = random.Random(seed)
    ops: list = []
    concepts: list[str] = []
    entities: list[str] = []
    events: list[str] = []
    serial = 0

    def fresh_phrase(kind: str) -> str:
        nonlocal serial
        serial += 1
        return (f"{rng.choice(_ADJS)} {rng.choice(_NOUNS)} "
                f"{kind} {serial}")

    def delta_op() -> dict:
        spec = {"op": "delta", "nodes": [], "aliases": [], "edges": [],
                "payloads": []}
        concept = fresh_phrase("systems")
        spec["nodes"].append(["concept", concept,
                              {"support": rng.randrange(1, 9)}])
        concepts.append(concept)
        if rng.random() < 0.5:
            category = fresh_phrase("category")
            spec["nodes"].append(["category", category, {}])
            spec["edges"].append(["category", category,
                                  "concept", concept, "isA"])
        for _ in range(rng.randrange(1, 4)):
            entity = fresh_phrase("unit")
            spec["nodes"].append(["entity", entity, {}])
            entities.append(entity)
            spec["edges"].append(["concept", rng.choice(concepts),
                                  "entity", entity, "isA"])
        if rng.random() < 0.6:
            event = fresh_phrase("launch")
            spec["nodes"].append(["event", event, {}])
            events.append(event)
            spec["edges"].append(["event", event, "entity",
                                  rng.choice(entities), "involve"])
        if len(entities) >= 2 and rng.random() < 0.4:
            first, second = rng.sample(entities, 2)
            spec["edges"].append(["entity", first, "entity", second,
                                  "correlate"])
        if rng.random() < 0.7:
            owner_type, owner = rng.choice(
                [("concept", rng.choice(concepts)),
                 ("entity", rng.choice(entities))])
            spec["aliases"].append([owner_type, owner,
                                    fresh_phrase("alias")])
        if rng.random() < 0.3 and len(concepts) >= 2:
            # A contested alias: the same surface string claimed by two
            # different nodes, stressing the first-claim-wins merge.
            alias = fresh_phrase("shared")
            first, second = rng.sample(concepts, 2)
            spec["aliases"].append(["concept", first, alias])
            spec["aliases"].append(["concept", second, alias])
        if rng.random() < 0.5:
            spec["payloads"].append(["concept", rng.choice(concepts),
                                     {"clicks": rng.randrange(1, 99)}])
        return spec

    def serve_op() -> dict:
        sample = rng.sample(entities, min(len(entities), 3))
        title = " ".join(sample[:2]) if sample else "empty probe"
        queries = [f"best {rng.choice(concepts)}",
                   f"{rng.choice(entities)} review"]
        return {"op": "serve",
                "docs": [["doc", title,
                          [f"all about {phrase}" for phrase in sample]]],
                "queries": queries,
                "probe_concept": rng.choice(concepts)}

    def profile_op() -> dict:
        return {"op": "profile", "user": f"u{rng.randrange(3)}",
                "tags": rng.sample(concepts + entities,
                                   min(2, len(concepts) + len(entities))),
                "k": 3}

    def story_op() -> dict:
        phrase = events[-1] if events else "quiet day"
        return {"op": "story",
                "events": [[phrase, "launch",
                            rng.sample(entities,
                                       min(2, len(entities))), day]
                           for day in range(2)],
                "read": phrase, "limit": 3}

    ops.append(delta_op())  # never start empty
    rebalance_at = rng.randrange(1, steps)
    for step in range(1, steps):
        if step == rebalance_at:
            ops.append({"op": "rebalance", "num_shards": rebalance_to})
            ops.append(serve_op())  # always probe right after the flip
            continue
        kind = rng.choice(["delta", "delta", "serve", "profile", "story"])
        ops.append({"delta": delta_op, "serve": serve_op,
                    "profile": profile_op, "story": story_op}[kind]())
    ops.append(serve_op())  # and at the very end
    return ops


# ----------------------------------------------------------------------
# replay: execute an op list against single store + cluster, asserting
# byte-identity of every serving response
# ----------------------------------------------------------------------
_TYPES = {"category": NodeType.CATEGORY, "concept": NodeType.CONCEPT,
          "entity": NodeType.ENTITY, "event": NodeType.EVENT,
          "topic": NodeType.TOPIC}
_EDGES = {"isA": EdgeType.ISA, "involve": EdgeType.INVOLVE,
          "correlate": EdgeType.CORRELATE}


class _Replay:
    """One scenario's live state: the producer (oracle recorder), the
    single-store service, the cluster under test, and the recorded
    delta stream (including ring records) for the replay checks."""

    def __init__(self, start_shards: int) -> None:
        self.producer = AttentionOntology()
        self.ner = NerTagger()
        self.single = OntologyService(self.producer, ner=self.ner,
                                      tagger_options=TAGGER_OPTIONS)
        self.cluster = ClusterService(num_shards=start_shards, ner=self.ner,
                                      tagger_options=TAGGER_OPTIONS)
        self.recorded = []

    # -- op handlers ---------------------------------------------------
    def _find(self, type_name: str, phrase: str):
        node = self.producer.find(_TYPES[type_name], phrase)
        assert node is not None, f"script references unknown {phrase!r}"
        return node

    def apply_delta(self, spec: dict) -> None:
        self.producer.begin_delta("script")
        for type_name, phrase, payload in spec["nodes"]:
            self.producer.add_node(_TYPES[type_name], phrase,
                                   payload=payload or None)
            if type_name == "entity":
                self.ner.register(phrase, "MISC")
        for src_t, src, dst_t, dst, edge in spec["edges"]:
            self.producer.add_edge(self._find(src_t, src).node_id,
                                   self._find(dst_t, dst).node_id,
                                   _EDGES[edge])
        for type_name, phrase, alias in spec["aliases"]:
            self.producer.add_alias(self._find(type_name, phrase).node_id,
                                    alias)
        for type_name, phrase, payload in spec["payloads"]:
            self.producer.update_payload(
                self._find(type_name, phrase).node_id, payload)
        delta = self.producer.commit_delta()
        self.recorded.append(delta)
        self.single.refresh([delta])
        self.cluster.refresh([delta])

    def rebalance(self, num_shards: int) -> None:
        before = len(self.producer.store)
        delta = self.cluster.rebalance(num_shards)
        self.recorded.append(delta)
        self.single.refresh([delta])
        moved = self.cluster.last_rebalance["moved_nodes"]
        # The consistent-hash guarantee: strictly fewer node records
        # move than a full re-route from version 0 would touch.
        assert moved < before, (moved, before)
        assert self.cluster.num_shards == num_shards
        assert self.cluster.version == self.producer.store.version

    def serve(self, spec: dict) -> None:
        docs = [(doc_id, tokenize(title), [tokenize(s) for s in sentences])
                for doc_id, title, sentences in spec["docs"]]
        probe = self._find("concept", spec["probe_concept"])
        for label, call in [
            ("tag", lambda s: s.tag_documents(docs)),
            ("query", lambda s: s.interpret_queries(spec["queries"])),
            ("neighborhood",
             lambda s: s.neighborhood(probe.node_id, depth=2)),
            ("stats", lambda s: s.stats()["ontology"]),
        ]:
            assert dumps(call(self.single)) == dumps(call(self.cluster)), \
                f"{label} diverged at version {self.cluster.version}"

    def profile(self, spec: dict) -> None:
        self.single.record_read(spec["user"], spec["tags"])
        self.cluster.record_read(spec["user"], spec["tags"])
        for label, call in [
            ("interests",
             lambda s: s.user_interests(spec["user"], k=spec["k"])),
            ("recsys",
             lambda s: s.recommend_for_user(spec["user"], k=spec["k"])),
        ]:
            assert dumps(call(self.single)) == dumps(call(self.cluster)), \
                f"{label} diverged at version {self.cluster.version}"

    def story(self, spec: dict) -> None:
        events = [EventRecord(phrase=phrase, trigger=trigger,
                              entities=list(entities), day=day)
                  for phrase, trigger, entities, day in spec["events"]]
        assert self.single.track_events(events) == \
            self.cluster.track_events(events)
        assert dumps(self.single.follow_ups(spec["read"],
                                            limit=spec["limit"])) == \
            dumps(self.cluster.follow_ups(spec["read"],
                                          limit=spec["limit"]))

    # -- coherence of replay and bootstrap ------------------------------
    def check_replay_and_bootstrap(self, start_shards: int,
                                   spec: dict) -> None:
        """A fresh cluster replaying the recorded stream (including the
        ring record) and one bootstrapped from a compacted snapshot must
        both serve byte-identically to the single store."""
        docs = [(doc_id, tokenize(title), [tokenize(s) for s in sentences])
                for doc_id, title, sentences in spec["docs"]]
        fresh = ClusterService(num_shards=start_shards, ner=self.ner,
                               tagger_options=TAGGER_OPTIONS,
                               deltas=self.recorded)
        assert fresh.num_shards == self.cluster.num_shards
        snapshot = self.producer.store.compact()
        booted = ClusterService(num_shards=start_shards, ner=self.ner,
                                tagger_options=TAGGER_OPTIONS,
                                snapshot=snapshot)
        assert booted.num_shards == self.cluster.num_shards
        for service in (fresh, booted):
            assert dumps(service.tag_documents(docs)) == \
                dumps(self.single.tag_documents(docs))
            assert dumps(service.interpret_queries(spec["queries"])) == \
                dumps(self.single.interpret_queries(spec["queries"]))
            assert dumps(service.stats()["ontology"]) == \
                dumps(self.single.stats()["ontology"])


def replay_op_list(ops: list, start_shards: int) -> _Replay:
    """Replay a recorded op list (the shrinkable failure artifact) —
    asserts serving byte-identity at every probe."""
    replay = _Replay(start_shards)
    last_serve = None
    for spec in ops:
        kind = spec["op"]
        if kind == "delta":
            replay.apply_delta(spec)
        elif kind == "rebalance":
            replay.rebalance(spec["num_shards"])
        elif kind == "serve":
            replay.serve(spec)
            last_serve = spec
        elif kind == "profile":
            replay.profile(spec)
        elif kind == "story":
            replay.story(spec)
        else:  # pragma: no cover - scripts are generated
            raise AssertionError(f"unknown scripted op {kind!r}")
    if last_serve is not None:
        replay.check_replay_and_bootstrap(start_shards, last_serve)
    return replay


def _artifact_dir() -> "pathlib.Path | None":
    root = os.environ.get("REPRO_CONSISTENCY_ARTIFACTS")
    if not root:
        return None
    path = pathlib.Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def _run_scenario(seed: int, steps: int, start_shards: int,
                  rebalance_to: int) -> None:
    ops = generate_ops(seed, steps, rebalance_to)
    try:
        replay_op_list(ops, start_shards)
    except AssertionError:
        artifacts = _artifact_dir()
        if artifacts is not None:
            name = f"oplist-seed{seed}-s{start_shards}-to{rebalance_to}.json"
            (artifacts / name).write_text(json.dumps(
                {"seed": seed, "start_shards": start_shards,
                 "rebalance_to": rebalance_to, "ops": ops}, indent=1))
            raise AssertionError(
                f"consistency violation (op list recorded at "
                f"{artifacts / name}; replay with "
                f"replay_op_list(ops, {start_shards}))")
        raise


# ----------------------------------------------------------------------
# the ring itself
# ----------------------------------------------------------------------
class TestHashRing:
    def test_deterministic_across_instances(self):
        first, second = HashRing(5), HashRing(5)
        keys = [f"concept::thing {i}" for i in range(200)]
        assert [first.shard_of_key(k) for k in keys] == \
            [second.shard_of_key(k) for k in keys]

    def test_growth_moves_keys_only_to_new_shards(self):
        """The consistent-hashing contract: growing N -> M strands no
        key between old shards — every moved key lands on a new one."""
        old, new = HashRing(2), HashRing(4, epoch=1)
        keys = [f"entity::item {i}" for i in range(800)]
        moved = [(old.shard_of_key(k), new.shard_of_key(k))
                 for k in keys if old.shard_of_key(k) != new.shard_of_key(k)]
        assert moved, "growth should move some keys"
        assert all(dst >= 2 for _src, dst in moved)
        # ... and far fewer than a full re-route of all keys.
        assert len(moved) < len(keys)

    def test_spread_covers_all_shards(self):
        ring = HashRing(5)
        owners = {ring.shard_of_key(f"concept::key {i}") for i in range(500)}
        assert owners == set(range(5))


# ----------------------------------------------------------------------
# the randomized consistency harness
# ----------------------------------------------------------------------
class TestRandomizedConsistency:
    # Start shard counts {1, 2, 3, 5} with a mid-stream rebalance each —
    # growth, shrink, and the degenerate 1-shard cluster all covered.
    @pytest.mark.parametrize("start_shards,rebalance_to,seed", [
        (1, 3, 0), (1, 3, 1),
        (2, 4, 0), (2, 4, 1),
        (3, 5, 0), (3, 5, 1),
        (5, 2, 0), (5, 2, 1),
    ])
    def test_random_interleaving_stays_byte_identical(
            self, start_shards, rebalance_to, seed):
        _run_scenario(seed=seed, steps=8, start_shards=start_shards,
                      rebalance_to=rebalance_to)

    def test_op_list_round_trips_through_json(self):
        """The failure artifact is self-sufficient: an op list serialized
        to JSON and reloaded replays identically (shrink a failing case
        by deleting ops from the file)."""
        ops = generate_ops(seed=7, steps=6, rebalance_to=3)
        reloaded = json.loads(json.dumps(ops))
        assert reloaded == ops
        replay_op_list(reloaded, start_shards=2)

    def test_rebalance_2_to_4_moves_fewer_records_than_full_reroute(self):
        """Acceptance gate: growing 2 -> 4 relocates strictly fewer node
        records than re-routing the stream from version 0 (which touches
        every node record), and some records do move."""
        ops = [spec for spec in generate_ops(seed=3, steps=10,
                                             rebalance_to=4)
               if spec["op"] == "delta"]
        replay = _Replay(start_shards=2)
        for spec in ops:
            replay.apply_delta(spec)
        total = len(replay.producer.store)
        delta = replay.cluster.rebalance(4)
        replay.single.refresh([delta])
        moved = replay.cluster.last_rebalance["moved_nodes"]
        assert 0 < moved < total
        # The routed stream agrees: every record is still served.
        assert dumps(replay.single.stats()["ontology"]) == \
            dumps(replay.cluster.stats()["ontology"])


# ----------------------------------------------------------------------
# crash recovery: a worker killed mid-rebalance re-bootstraps from
# snapshot + tail into the new ring epoch
# ----------------------------------------------------------------------
@pytest.fixture
def log_dir(tmp_path, request):
    """Log directory — under REPRO_CONSISTENCY_ARTIFACTS when set, so a
    failing CI run uploads the on-disk state that broke."""
    root = os.environ.get("REPRO_CONSISTENCY_ARTIFACTS")
    if root:
        path = pathlib.Path(root) / request.node.name.replace("/", "_")
        path.mkdir(parents=True, exist_ok=True)
        return path
    return tmp_path / "log"


class TestRemoteRebalanceCrashRecovery:
    def _seed_log(self, log_dir):
        producer = AttentionOntology()
        producer.begin_delta("build")
        concept = producer.add_node(NodeType.CONCEPT, "marvel movies")
        for name in ("iron man", "thor", "hulk", "black widow", "wasp"):
            entity = producer.add_node(NodeType.ENTITY, name)
            producer.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
        producer.add_alias(concept.node_id, "mcu films")
        delta = producer.commit_delta()
        log = DeltaLog(log_dir, segment_max_bytes=512)
        log.append(delta)
        catalog = SnapshotCatalog(log, compact_bytes=1, retain_segments=0)
        catalog.record(OntologyStore.bootstrap(None, [delta]))
        ner = NerTagger()
        for name in ("iron man", "thor", "hulk", "black widow", "wasp"):
            ner.register(name, "WORK")
        return producer, log, catalog, ner

    def test_worker_killed_mid_rebalance_rejoins_new_epoch(self, log_dir):
        """Kill a shard worker, then rebalance 2 -> 3: the ring record
        is already published when the dead worker is discovered, so its
        replacement must re-bootstrap from snapshot + tail *across* the
        flip — landing in the new epoch with no delta gap — while the
        cluster stays byte-identical to the single store."""
        producer, log, catalog, ner = self._seed_log(log_dir)
        single = OntologyService(producer, ner=ner,
                                 tagger_options=TAGGER_OPTIONS)
        queries = ["best marvel movies", "thor review"]
        with PublisherThread(log, catalog) as publisher:
            with RemoteClusterService(publisher.address, num_shards=2,
                                      ner=ner,
                                      tagger_options=TAGGER_OPTIONS
                                      ) as remote:
                remote.terminate_worker(1)
                delta = remote.rebalance(3, publish=publisher.publish)
                single.refresh([delta])
                # The corpse was found and re-bootstrapped mid-rebalance.
                assert remote.last_rebalance["recovered_shards"] == [1]
                assert remote.num_shards == 3
                assert remote.version == producer.store.version
                # Every worker (revived, surviving, and newly seeded)
                # serves the new epoch...
                syncs = [replica.sync(remote.version)
                         for replica in remote.replicas]
                assert [line["epoch"] for line in syncs] == [1, 1, 1]
                # ...the revival came from snapshot + tail, not a gap
                # (a gap would surface as recovered=True on re-sync).
                assert all(not line["recovered"] for line in syncs)
                # ...and the cluster is still byte-identical.
                assert dumps(single.interpret_queries(queries)) == \
                    dumps(remote.interpret_queries(queries))
                assert dumps(single.stats()["ontology"]) == \
                    dumps(remote.stats()["ontology"])

    def test_rebalance_syncs_lagging_workers_before_slicing(self, log_dir):
        """Regression (review finding): a rebalance must bring every
        worker to the log head *before* extracting transfer slices —
        otherwise a delta published since the last sync is missing from
        the slice, and the seeded shard serves stale state forever."""
        producer, log, catalog, ner = self._seed_log(log_dir)
        single = OntologyService(producer, ner=ner,
                                 tagger_options=TAGGER_OPTIONS)
        with PublisherThread(log, catalog) as publisher:
            with RemoteClusterService(publisher.address, num_shards=2,
                                      ner=ner,
                                      tagger_options=TAGGER_OPTIONS
                                      ) as remote:
                # Publish payload updates to *every* node (whichever
                # ones move, their latest state is post-update) without
                # syncing the cluster...
                producer.begin_delta("late")
                for node in list(producer.nodes()):
                    producer.update_payload(node.node_id, {"late": 1})
                late = producer.commit_delta()
                publisher.publish([late])
                single.refresh([late])
                assert remote.version < producer.store.version  # lagging
                # ...then rebalance straight away: slices must reflect
                # the late delta, not the workers' stale replicas.
                delta = remote.rebalance(4, publish=publisher.publish)
                single.refresh([delta])
                assert remote.version == producer.store.version
                queries = ["best marvel movies", "iron man review"]
                assert dumps(single.interpret_queries(queries)) == \
                    dumps(remote.interpret_queries(queries))
                moved = [node_id for node_id in remote.router._owner
                         if remote.router.owner_of(node_id) >= 2]
                assert moved, "growth to 4 shards should move some nodes"
                for node_id in moved:
                    assert remote.ontology.store.node(node_id).payload.get(
                        "late") == 1, f"moved node {node_id} lost the " \
                        "late payload update"

    def test_worker_killed_after_rebalance_restarts_into_epoch(self,
                                                               log_dir):
        """A crash after a completed rebalance: restart_shard respawns
        the worker, which bootstraps from snapshot + tail directly into
        the rebalanced ring epoch."""
        producer, log, catalog, ner = self._seed_log(log_dir)
        single = OntologyService(producer, ner=ner,
                                 tagger_options=TAGGER_OPTIONS)
        queries = ["best marvel movies", "hulk review"]
        with PublisherThread(log, catalog) as publisher:
            with RemoteClusterService(publisher.address, num_shards=2,
                                      ner=ner,
                                      tagger_options=TAGGER_OPTIONS
                                      ) as remote:
                delta = remote.rebalance(4, publish=publisher.publish)
                single.refresh([delta])
                remote.terminate_worker(2)
                line = remote.restart_shard(2)
                assert line["shard"] == 2
                synced = remote.replicas[2].sync(remote.version)
                assert synced["epoch"] == 1
                assert not synced["recovered"]
                assert dumps(single.interpret_queries(queries)) == \
                    dumps(remote.interpret_queries(queries))
                assert dumps(single.stats()["ontology"]) == \
                    dumps(remote.stats()["ontology"])
