"""Tests for repro.apps.story_tree."""

import pytest

from repro.apps.story_tree import EventRecord, StoryTreeBuilder


@pytest.fixture
def trade_war_events():
    """A miniature of the paper's Figure 5 'China-US Trade' story."""
    return [
        EventRecord("usa imposes new tariffs on chinese goods", "imposes",
                    ["usa", "china"], day=1),
        EventRecord("china imposes tariffs on usa products", "imposes",
                    ["china", "usa"], day=2),
        EventRecord("usa raises tariff rates on chinese goods", "raises",
                    ["usa", "china"], day=3),
        EventRecord("trade consultations joint statement", "statement",
                    ["usa", "china"], day=4),
        EventRecord("pop star will have a concert", "concert",
                    ["jay chou"], day=2),
    ]


@pytest.fixture
def builder():
    return StoryTreeBuilder(cluster_threshold=1.0)


class TestRetrieval:
    def test_common_entity_required(self, builder, trade_war_events):
        seed = trade_war_events[0]
        related = builder.retrieve_correlated(seed, trade_war_events)
        phrases = {e.phrase for e in related}
        assert "pop star will have a concert" not in phrases
        assert len(related) == 3

    def test_same_trigger_filter(self, builder, trade_war_events):
        seed = trade_war_events[0]
        related = builder.retrieve_correlated(seed, trade_war_events,
                                              require_same_trigger=True)
        assert all(e.trigger == "imposes" for e in related)

    def test_seed_excluded(self, builder, trade_war_events):
        seed = trade_war_events[0]
        related = builder.retrieve_correlated(seed, trade_war_events)
        assert seed not in related


class TestSimilarity:
    def test_similar_events_score_higher(self, builder, trade_war_events):
        s_related = builder.similarity(trade_war_events[0], trade_war_events[1])
        s_unrelated = builder.similarity(trade_war_events[0], trade_war_events[4])
        assert s_related > s_unrelated

    def test_self_similarity_is_max(self, builder, trade_war_events):
        sim = builder.similarity_matrix(trade_war_events[:3])
        assert all(sim[i, i] == pytest.approx(3.0) for i in range(3))

    def test_matrix_symmetric(self, builder, trade_war_events):
        sim = builder.similarity_matrix(trade_war_events[:4])
        assert (sim == sim.T).all()


class TestClustering:
    def test_related_events_cluster_together(self, builder, trade_war_events):
        clusters = builder.cluster(trade_war_events)
        by_event = {}
        for ci, members in enumerate(clusters):
            for m in members:
                by_event[trade_war_events[m].phrase] = ci
        # The two 'imposes tariffs' events must share a cluster...
        assert by_event["usa imposes new tariffs on chinese goods"] == \
            by_event["china imposes tariffs on usa products"]
        # ...and the concert must not join them.
        assert by_event["pop star will have a concert"] != \
            by_event["usa imposes new tariffs on chinese goods"]

    def test_empty_input(self, builder):
        assert builder.cluster([]) == []

    def test_threshold_controls_merging(self, trade_war_events):
        strict = StoryTreeBuilder(cluster_threshold=3.1)  # nothing can merge
        clusters = strict.cluster(trade_war_events)
        assert len(clusters) == len(trade_war_events)


class TestTreeFormation:
    def test_root_is_earliest_event(self, builder, trade_war_events):
        tree = builder.build(trade_war_events[2], trade_war_events)
        assert tree.root.event.day == min(
            e.day for b in tree.branches for e in b
        )

    def test_branches_chronological(self, builder, trade_war_events):
        tree = builder.build(trade_war_events[0], trade_war_events)
        for branch in tree.branches:
            days = [e.day for e in branch]
            assert days == sorted(days)

    def test_all_retrieved_events_in_tree(self, builder, trade_war_events):
        tree = builder.build(trade_war_events[0], trade_war_events)
        assert tree.num_events == 4  # concert filtered by entity overlap

    def test_render_contains_phrases(self, builder, trade_war_events):
        tree = builder.build(trade_war_events[0], trade_war_events)
        text = tree.render()
        assert "story:" in text
        assert "usa imposes new tariffs on chinese goods" in text
