"""Tests for repro.graph.click_graph and repro.graph.random_walk."""

import pytest

from repro.config import MiningConfig
from repro.errors import GraphError
from repro.graph.click_graph import ClickGraph, QueryDocCluster
from repro.graph.random_walk import RandomWalkClusterer


@pytest.fixture
def graph():
    g = ClickGraph()
    g.add_click("best cars", "d1", 8, title="the best cars ranked", category="cars")
    g.add_click("best cars", "d2", 2, title="best cars review", category="cars")
    g.add_click("top cars", "d1", 4, title="the best cars ranked", category="cars")
    g.add_click("unrelated films", "d3", 5, title="famous films", category="film")
    return g


class TestClickGraph:
    def test_counts(self, graph):
        assert graph.num_queries == 3
        assert graph.num_docs == 3
        assert graph.num_edges == 4

    def test_clicks_accumulate(self):
        g = ClickGraph()
        g.add_click("q", "d", 1)
        g.add_click("q", "d", 2)
        assert g.clicks("q", "d") == 3

    def test_nonpositive_count_raises(self):
        with pytest.raises(GraphError):
            ClickGraph().add_click("q", "d", 0)

    def test_transport_probabilities_sum_to_one(self, graph):
        p = graph.p_doc_given_query("best cars")
        assert sum(p.values()) == pytest.approx(1.0)
        q = graph.p_query_given_doc("d1")
        assert sum(q.values()) == pytest.approx(1.0)

    def test_transport_probability_values(self, graph):
        p = graph.p_doc_given_query("best cars")
        assert p["d1"] == pytest.approx(0.8)
        assert p["d2"] == pytest.approx(0.2)

    def test_unknown_query_empty(self, graph):
        assert graph.p_doc_given_query("nope") == {}

    def test_titles_and_categories(self, graph):
        assert graph.title("d1") == "the best cars ranked"
        assert graph.category("d3") == "film"
        assert graph.title("missing") == ""

    def test_merge(self, graph):
        other = ClickGraph()
        other.add_click("best cars", "d1", 1)
        other.add_click("new query", "d9", 2, title="t9")
        graph.merge(other)
        assert graph.clicks("best cars", "d1") == 9
        assert graph.title("d9") == "t9"


class TestQueryDocCluster:
    def test_seed_inserted_first(self):
        c = QueryDocCluster(seed_query="s", queries=["a"])
        assert c.queries[0] == "s"

    def test_seed_not_duplicated(self):
        c = QueryDocCluster(seed_query="s", queries=["s", "a"])
        assert c.queries.count("s") == 1


class TestRandomWalk:
    def test_cluster_contains_related_query(self, graph):
        clusterer = RandomWalkClusterer(graph, MiningConfig(visit_threshold=0.01))
        cluster = clusterer.cluster("best cars")
        assert "top cars" in cluster.queries  # shares doc d1 and word "cars"

    def test_cluster_excludes_unrelated(self, graph):
        clusterer = RandomWalkClusterer(graph, MiningConfig(visit_threshold=0.01))
        cluster = clusterer.cluster("best cars")
        assert "unrelated films" not in cluster.queries
        assert "d3" not in cluster.doc_ids

    def test_cluster_docs_sorted_by_weight(self, graph):
        clusterer = RandomWalkClusterer(graph, MiningConfig(visit_threshold=0.001))
        cluster = clusterer.cluster("best cars")
        weights = [cluster.doc_weights[d] for d in cluster.doc_ids]
        assert weights == sorted(weights, reverse=True)

    def test_seed_always_kept(self, graph):
        clusterer = RandomWalkClusterer(graph, MiningConfig(visit_threshold=0.9))
        cluster = clusterer.cluster("best cars")
        assert cluster.seed_query in cluster.queries

    def test_isolated_query_cluster(self):
        g = ClickGraph()
        g.add_click("lonely query", "d1", 1, title="t")
        clusterer = RandomWalkClusterer(g)
        cluster = clusterer.cluster("lonely query")
        assert cluster.queries == ["lonely query"]

    def test_cluster_all(self, graph):
        clusterer = RandomWalkClusterer(graph)
        clusters = clusterer.cluster_all()
        assert len(clusters) == graph.num_queries

    def test_caps_respected(self, graph):
        cfg = MiningConfig(max_cluster_queries=1, max_cluster_docs=1,
                           visit_threshold=0.001)
        cluster = RandomWalkClusterer(graph, cfg).cluster("best cars")
        assert len(cluster.queries) <= 1
        assert len(cluster.doc_ids) <= 1
