"""Tests for repro.datasets (CMD / EMD builders and splits)."""

import pytest

from repro.datasets import build_cmd, build_emd, split_dataset
from repro.synth.world import WorldConfig, build_world


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(num_days=3, seed=3))


@pytest.fixture(scope="module")
def cmd(world):
    return build_cmd(world, examples_per_concept=2, seed=4)


@pytest.fixture(scope="module")
def emd(world):
    return build_emd(world, examples_per_event=1, seed=5)


class TestCmd:
    def test_size(self, world, cmd):
        assert len(cmd) == 2 * len(world.concepts)

    def test_gold_tokens_subsequence_of_some_text(self, cmd):
        for example in cmd:
            found = False
            for text in example.queries + example.titles:
                it = iter(text)
                if all(tok in it for tok in example.gold_tokens):
                    found = True
                    break
            assert found, example.source_phrase

    def test_kind_and_category(self, cmd):
        assert all(e.kind == "concept" for e in cmd)
        assert all(e.category for e in cmd)

    def test_queries_and_titles_nonempty(self, cmd):
        assert all(e.queries and e.titles for e in cmd)

    def test_deterministic(self, world):
        a = build_cmd(world, examples_per_concept=1, seed=11)
        b = build_cmd(world, examples_per_concept=1, seed=11)
        assert [e.queries for e in a] == [e.queries for e in b]


class TestEmd:
    def test_size(self, world, emd):
        assert len(emd) == len(world.events)

    def test_roles_cover_entity_and_trigger(self, emd):
        for example in emd:
            roles = set(example.token_roles.values())
            assert "entity" in roles
            assert "trigger" in roles

    def test_role_tokens_in_gold_or_titles(self, emd):
        for example in emd:
            all_tokens = {t for text in example.queries + example.titles for t in text}
            for token in example.token_roles:
                assert token in all_tokens

    def test_day_matches_world(self, world, emd):
        by_phrase = {e.phrase: e.day for e in world.events.values()}
        for example in emd:
            assert example.day == by_phrase[example.source_phrase]

    def test_event_titles_contain_subtitles(self, emd):
        from repro.core.coverrank import split_subtitles

        for example in emd:
            assert any(len(split_subtitles(t)) >= 2 for t in example.titles)


class TestSplit:
    def test_fractions(self, cmd):
        train, dev, test = split_dataset(cmd, seed=0)
        assert len(train) + len(dev) + len(test) == len(cmd)
        assert len(train) >= len(dev) >= 0
        assert len(train) > len(test)

    def test_disjoint(self, cmd):
        train, dev, test = split_dataset(cmd, seed=0)
        ids = [id(e) for e in train + dev + test]
        assert len(ids) == len(set(ids))

    def test_deterministic(self, cmd):
        t1, _d1, _x1 = split_dataset(cmd, seed=3)
        t2, _d2, _x2 = split_dataset(cmd, seed=3)
        assert [e.source_phrase for e in t1] == [e.source_phrase for e in t2]

    def test_seed_changes_order(self, cmd):
        t1, _d, _x = split_dataset(cmd, seed=1)
        t2, _d2, _x2 = split_dataset(cmd, seed=2)
        assert [e.source_phrase for e in t1] != [e.source_phrase for e in t2]
