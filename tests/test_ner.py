"""Tests for repro.text.ner."""

import pytest

from repro.text.ner import NerTagger


@pytest.fixture
def tagger():
    t = NerTagger()
    t.register("hayao miyazaki", "PER")
    t.register("honda civic", "PROD")
    t.register("honda", "ORG")
    t.register("london", "LOC")
    return t


class TestTagging:
    def test_single_token_entity(self, tagger):
        assert tagger.tag(["visit", "london"]) == ["O", "B-LOC"]

    def test_multi_token_entity_bio(self, tagger):
        tags = tagger.tag(["the", "hayao", "miyazaki", "films"])
        assert tags == ["O", "B-PER", "I-PER", "O"]

    def test_longest_match_wins(self, tagger):
        # "honda civic" (PROD) beats "honda" (ORG) at the same position.
        tags = tagger.tag(["honda", "civic", "review"])
        assert tags == ["B-PROD", "I-PROD", "O"]

    def test_shorter_match_when_longer_absent(self, tagger):
        assert tagger.tag(["honda", "odyssey"]) == ["B-ORG", "O"]

    def test_no_entities(self, tagger):
        assert tagger.tag(["just", "words"]) == ["O", "O"]

    def test_empty_sequence(self, tagger):
        assert tagger.tag([]) == []

    def test_case_insensitive(self, tagger):
        assert tagger.tag(["London"]) == ["B-LOC"]


class TestSpansAndEntities:
    def test_entity_spans(self, tagger):
        spans = tagger.entity_spans(["hayao", "miyazaki", "in", "london"])
        assert spans == [(0, 2, "PER"), (3, 4, "LOC")]

    def test_entities_surface_forms(self, tagger):
        out = tagger.entities(["honda", "civic", "vs", "london"])
        assert out == ["honda civic", "london"]

    def test_adjacent_entities(self, tagger):
        spans = tagger.entity_spans(["london", "london"])
        assert len(spans) == 2


class TestRegistration:
    def test_register_invalid_type_raises(self):
        t = NerTagger()
        with pytest.raises(ValueError):
            t.register("x", "NOPE")

    def test_register_o_type_raises(self):
        t = NerTagger()
        with pytest.raises(ValueError):
            t.register("x", "O")

    def test_register_empty_raises(self):
        t = NerTagger()
        with pytest.raises(ValueError):
            t.register("   ", "PER")

    def test_register_many_and_len(self):
        t = NerTagger()
        t.register_many({"a b": "PER", "c": "LOC"})
        assert len(t) == 2
