"""Tests for repro.apps.recsys (the Figure 6-7 CTR simulator)."""

import numpy as np
import pytest

from repro.apps.recsys import (
    ArmConfig,
    FeedSimulator,
    default_figure6_arms,
    default_figure7_arms,
)
from repro.synth.world import WorldConfig, build_world


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(num_days=6, seed=4, events_per_template=3))


@pytest.fixture(scope="module")
def simulator(world):
    return FeedSimulator(world, num_users=200, seed=0)


class TestArmConfig:
    def test_invalid_tag_type_raises(self):
        with pytest.raises(ValueError):
            ArmConfig("bad", ("nonsense",))

    def test_default_arm_sets(self):
        fig6 = default_figure6_arms()
        assert [a.name for a in fig6] == ["all types of tags", "category + entity"]
        fig7 = default_figure7_arms()
        assert len(fig7) == 5


class TestSimulation:
    def test_day_results_cover_range(self, simulator, world):
        results = simulator.simulate_arm(ArmConfig("cat", ("category",)))
        assert len(results) == world.config.num_days
        assert all(r.impressions >= 0 for r in results)

    def test_ctr_within_unit_interval(self, simulator):
        for arm in default_figure7_arms():
            for r in simulator.simulate_arm(arm):
                assert 0.0 <= r.ctr <= 1.0

    def test_deterministic_given_seed(self, world):
        a = FeedSimulator(world, num_users=100, seed=7).simulate_arm(
            ArmConfig("t", ("topic",)))
        b = FeedSimulator(world, num_users=100, seed=7).simulate_arm(
            ArmConfig("t", ("topic",)))
        assert [(r.impressions, r.clicks) for r in a] == [
            (r.impressions, r.clicks) for r in b
        ]

    def _mean_ctr(self, results):
        total_clicks = sum(r.clicks for r in results)
        total_impr = sum(r.impressions for r in results)
        return total_clicks / total_impr if total_impr else 0.0

    def test_topic_beats_category(self, simulator):
        topic = self._mean_ctr(simulator.simulate_arm(ArmConfig("t", ("topic",))))
        category = self._mean_ctr(simulator.simulate_arm(ArmConfig("c", ("category",))))
        assert topic > category

    def test_all_tags_beat_category_entity(self, simulator):
        arms = default_figure6_arms()
        results = simulator.compare_arms(arms)
        all_tags = self._mean_ctr(results["all types of tags"])
        baseline = self._mean_ctr(results["category + entity"])
        assert all_tags > baseline

    def test_figure7_ordering_topic_event_top(self, simulator):
        results = simulator.compare_arms(default_figure7_arms())
        means = {name: self._mean_ctr(rs) for name, rs in results.items()}
        assert means["topic"] > means["entity"]
        assert means["event"] > means["entity"]
        assert means["entity"] > means["category"]

    def test_event_arm_more_volatile_than_topic(self, simulator):
        topic = simulator.simulate_arm(ArmConfig("t", ("topic",)))
        event = simulator.simulate_arm(ArmConfig("e", ("event",)))
        def day_std(rs):
            ctrs = [r.ctr for r in rs if r.impressions > 0]
            return float(np.std(ctrs)) if ctrs else 0.0
        # Event supply is bursty; its daily CTR varies at least as much.
        assert day_std(event) >= day_std(topic) * 0.5
