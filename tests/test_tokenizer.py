"""Tests for repro.text.tokenizer."""

from hypothesis import given, strategies as st

from repro.text.tokenizer import detokenize, tokenize, tokenize_with_offsets


class TestTokenize:
    def test_simple_sentence(self):
        assert tokenize("Best fuel efficient cars") == [
            "best", "fuel", "efficient", "cars",
        ]

    def test_punctuation_split(self):
        assert tokenize("breaking : news , here") == ["breaking", ":", "news", ",", "here"]

    def test_punctuation_attached(self):
        assert tokenize("what are films?") == ["what", "are", "films", "?"]

    def test_hyphenated_word_stays_together(self):
        assert tokenize("fuel-efficient cars") == ["fuel-efficient", "cars"]

    def test_contraction_stays_together(self):
        assert tokenize("miyazaki's films") == ["miyazaki's", "films"]

    def test_numbers(self):
        assert tokenize("top 5 picks") == ["top", "5", "picks"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \t\n") == []

    def test_case_normalisation(self):
        assert tokenize("Theresa May") == ["theresa", "may"]

    def test_preserve_case_option(self):
        assert tokenize("Theresa May", lowercase=False) == ["Theresa", "May"]

    def test_alnum_model_names(self):
        assert tokenize("iphone xs and mate20 pro") == [
            "iphone", "xs", "and", "mate20", "pro",
        ]


class TestOffsets:
    def test_offsets_align_with_source(self):
        text = "Best cars, ever!"
        for token in tokenize_with_offsets(text):
            assert text[token.start : token.end].lower() == token.text

    def test_offsets_count_matches_tokenize(self):
        text = "what are the best films?"
        assert len(tokenize_with_offsets(text)) == len(tokenize(text))


class TestDetokenize:
    def test_round_trip_words(self):
        assert detokenize(["best", "cars"]) == "best cars"

    def test_punctuation_attaches_left(self):
        assert detokenize(["films", "?"]) == "films?"

    def test_empty(self):
        assert detokenize([]) == ""


@given(st.text(max_size=200))
def test_tokenize_never_raises_and_lowercases(text):
    tokens = tokenize(text)
    assert all(t == t.lower() for t in tokens)
    assert all(t for t in tokens)  # no empty tokens


@given(st.lists(st.sampled_from(["cars", "best", "5", ",", "?", "films"]), max_size=10))
def test_detokenize_tokenize_round_trip_words(tokens):
    # Round trip preserves the token sequence for word tokens.
    rebuilt = tokenize(detokenize(tokens))
    assert rebuilt == tokens
