"""Tests for repro.views: the Z-set delta algebra, the view catalog,
delta lowering, and the serving layer's maintained-view protocol
(fold / skip / stale / rehydrate) including the eager LRU purge."""

import pytest

from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.core.store import OntologyDelta
from repro.core.zsets import delta_to_zsets, token_rows
from repro.serving import OntologyService
from repro.serving.rpc import dumps
from repro.text.ner import NerTagger
from repro.text.tokenizer import tokenize
from repro.views import TokenPostingsView, ViewCatalog, ZSet


# ----------------------------------------------------------------------
# the Z-set algebra
# ----------------------------------------------------------------------
class TestZSet:
    def test_weights_sum_and_zero_totals_drop(self):
        z = ZSet([("a", 1), ("b", 2)])
        z.add("a", 3)
        assert z.weight("a") == 4 and z.weight("b") == 2
        z.add("a", -4)
        assert "a" not in z and z.weight("a") == 0
        assert len(z) == 1

    def test_group_laws(self):
        a = ZSet([("x", 2), ("y", -1)])
        b = ZSet([("y", 1), ("z", 5)])
        assert a + b == ZSet([("x", 2), ("z", 5)])  # y cancels
        assert a - a == ZSet()
        assert -(-a) == a
        assert not (a - a)  # the empty Z-set is falsy

    def test_map_is_linear(self):
        a = ZSet([(1, 2), (2, 3)])
        b = ZSet([(2, -3), (3, 1)])
        fn = lambda n: n % 2  # collisions: images' weights must sum
        assert (a + b).map(fn) == a.map(fn) + b.map(fn)

    def test_filter_is_linear(self):
        a = ZSet([(1, 1), (2, 4)])
        b = ZSet([(2, -4), (4, 2)])
        even = lambda n: n % 2 == 0
        assert (a + b).filter(even) == a.filter(even) + b.filter(even)

    def test_join_weights_multiply_and_is_bilinear(self):
        left = ZSet([(("k", "l1"), 2)])
        delta_left = ZSet([(("k", "l2"), 1)])
        right = ZSet([(("k", "r1"), 3)])
        on = lambda row: row[0]
        joined = left.join(right, on=on)
        assert joined.weight(((("k", "l1")), ("k", "r1"))) == 6
        # Linearity in the left argument: join(a + da, b) ==
        # join(a, b) + join(da, b).
        assert (left + delta_left).join(right, on=on) == \
            left.join(right, on=on) + delta_left.join(right, on=on)

    def test_distinct_is_not_linear(self):
        # The documented counterexample: support collapses weights, so
        # distinct(a + b) != distinct(a) + distinct(b) in general.
        a = ZSet([("x", 1)])
        b = ZSet([("x", 1)])
        assert (a + b).distinct() == ZSet([("x", 1)])
        assert a.distinct() + b.distinct() == ZSet([("x", 2)])

    def test_aggregate_groups_and_drops_zero_totals(self):
        z = ZSet([(("u1", 2.0), 1), (("u1", 3.0), 2), (("u2", 1.0), 1)])
        totals = z.aggregate(key=lambda row: row[0],
                             value=lambda row: row[1])
        assert totals == {"u1": 8.0, "u2": 1.0}
        # Aggregate totals add group-wise across deltas...
        retraction = ZSet([(("u2", 1.0), -1)])
        after = (z + retraction).aggregate(key=lambda row: row[0],
                                           value=lambda row: row[1])
        # ...and a group cancelled to zero disappears entirely.
        assert after == {"u1": 8.0}

    def test_insertion_order_is_deterministic(self):
        z = ZSet([("b", 1), ("a", 1)])
        assert [element for element, _w in z] == ["b", "a"]
        assert z.entries() == [("b", 1), ("a", 1)]


# ----------------------------------------------------------------------
# lowering OntologyDelta -> per-relation Z-sets
# ----------------------------------------------------------------------
class TestDeltaLowering:
    def _delta(self):
        onto = AttentionOntology()
        onto.begin_delta("test")
        concept = onto.add_node(NodeType.CONCEPT, "marvel movies")
        entity = onto.add_node(NodeType.ENTITY, "iron man")
        onto.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
        onto.add_alias(concept.node_id, "mcu films")
        onto.update_payload(concept.node_id, {"clicks": 3})
        return onto, concept, entity, onto.commit_delta()

    def test_created_nodes_emit_node_and_token_rows(self):
        _onto, concept, entity, delta = self._delta()
        relations = delta_to_zsets(delta)
        assert relations["nodes"].weight(
            (concept.node_id, "concept", "marvel movies")) == 1
        assert relations["tokens"].weight(
            ("concept", "marvel", concept.node_id)) == 1
        assert relations["tokens"].weight(
            ("entity", "iron", entity.node_id)) == 1
        assert relations["edges"].weight(
            (concept.node_id, entity.node_id, "isA", 1.0)) == 1
        assert relations["aliases"].weight(
            (concept.node_id, "mcu films")) == 1

    def test_merge_and_payload_ops_lower_to_zero_rows(self):
        onto, _concept, _entity, _delta = self._delta()
        onto.begin_delta("again")
        onto.add_node(NodeType.CONCEPT, "marvel movies")  # merge, not create
        merge_delta = onto.commit_delta()
        relations = delta_to_zsets(merge_delta)
        assert all(not relations[name] for name in relations)

    def test_ghost_node_ops_emit_nothing(self):
        # A shard sub-delta marks unowned nodes as ghosts: routing
        # copies, never owned posting rows.
        delta = OntologyDelta(stage="sub", base_version=0, version=1, ops=[
            {"op": "node", "type": "entity", "phrase": "thor",
             "payload": {}, "node_id": "e1", "created": True,
             "ghost": True},
            {"op": "node", "type": "entity", "phrase": "hulk",
             "payload": {}, "node_id": "e2", "created": True},
        ])
        relations = delta_to_zsets(delta)
        assert len(relations["nodes"]) == 1
        assert relations["tokens"].weight(("entity", "hulk", "e2")) == 1
        assert ("entity", "thor", "e1") not in relations["tokens"]

    def test_token_rows_are_distinct_and_sorted(self):
        rows = token_rows("concept", "big big data big", "c1")
        assert rows == [("concept", "big", "c1"), ("concept", "data", "c1")]


# ----------------------------------------------------------------------
# the catalog
# ----------------------------------------------------------------------
class _RecordingView:
    def __init__(self):
        self.applied = []
        self.rebuilt = 0

    def apply(self, relations):
        self.applied.append(relations)

    def rebuild(self):
        self.rebuilt += 1


class TestViewCatalog:
    def test_register_rejects_duplicates(self):
        catalog = ViewCatalog()
        catalog.register("v", _RecordingView())
        with pytest.raises(ValueError):
            catalog.register("v", _RecordingView())
        assert "v" in catalog and len(catalog) == 1

    def test_advance_folds_every_view_and_adopts_version(self):
        catalog = ViewCatalog()
        first, second = _RecordingView(), _RecordingView()
        catalog.register("a", first)
        catalog.register("b", second)
        batch = {"tokens": ZSet([(("t", "x", "n1"), 1)])}
        catalog.advance(batch, version=7)
        assert catalog.version == 7
        assert len(first.applied) == len(second.applied) == 1
        stats = catalog.stats()
        assert stats["deltas_folded"] == 1
        assert stats["rows_folded"] == 1
        assert stats["views"] == 2 and not stats["stale"]

    def test_stale_flag_cleared_by_rehydrate(self):
        catalog = ViewCatalog()
        view = catalog.register("v", _RecordingView())
        catalog.mark_stale()
        assert catalog.stale
        catalog.rehydrate(version=3)
        assert not catalog.stale
        assert catalog.version == 3 and view.rebuilt == 1
        assert catalog.stats()["rehydrations"] == 1

    def test_initial_hydration_does_not_count_as_repair(self):
        catalog = ViewCatalog()
        catalog.register("v", _RecordingView())
        catalog.rehydrate(version=1, count=False)
        assert catalog.stats()["rehydrations"] == 0

    def test_feed_runs_out_of_band_update(self):
        catalog = ViewCatalog()
        seen = []
        assert catalog.feed("v", lambda: seen.append(1) or "ok") == "ok"
        assert seen == [1]


# ----------------------------------------------------------------------
# the postings view against a real store
# ----------------------------------------------------------------------
class TestTokenPostingsView:
    def test_maintained_matches_recompute_after_folds(self):
        onto = AttentionOntology()
        view = TokenPostingsView(onto.store)
        view.rebuild()
        for phrase in ("solar engine", "solar market", "lunar engine"):
            onto.begin_delta("grow")
            onto.add_node(NodeType.CONCEPT, phrase)
            delta = onto.commit_delta()
            view.apply(delta_to_zsets(delta))
            assert dumps(view.materialized()) == dumps(view.recompute())
        ids = view.ids("concept", "solar")
        assert len(ids) == 2
        assert view.candidate_ids("concept", ["solar", "lunar"]) == \
            view.ids("concept", "solar") | view.ids("concept", "lunar")

    def test_negative_weight_retracts_posting_rows(self):
        view = TokenPostingsView()
        view.apply({"tokens": ZSet([(("entity", "thor", "e1"), 1),
                                    (("entity", "thor", "e2"), 1)])})
        view.apply({"tokens": ZSet([(("entity", "thor", "e1"), -1)])})
        assert view.ids("entity", "thor") == {"e2"}
        view.apply({"tokens": ZSet([(("entity", "thor", "e2"), -1)])})
        assert view.ids("entity", "thor") == set()
        assert view.materialized() == {}


# ----------------------------------------------------------------------
# the serving protocol: fold / skip / stale / rehydrate + eager purge
# ----------------------------------------------------------------------
TAGGER_OPTIONS = {"coherence_threshold": 0.01, "lcs_threshold": 0.6}


@pytest.fixture
def ner():
    t = NerTagger()
    t.register("iron man", "WORK")
    return t


def _grow(onto, phrase):
    onto.begin_delta("grow")
    onto.add_node(NodeType.CONCEPT, phrase)
    return onto.commit_delta()


class TestServiceViewProtocol:
    def test_fold_views_gates_on_catalog_version(self, ner):
        onto = AttentionOntology()
        service = OntologyService(onto, ner=ner, tagger_options=TAGGER_OPTIONS)
        applied = _grow(onto, "solar engine")
        assert service.fold_views(applied) == "applied"
        assert service.views.version == onto.store.version
        assert service.fold_views(applied) == "skipped"  # redelivery
        skipped = _grow(onto, "lunar market")
        gapped = _grow(onto, "arctic summit")
        assert service.fold_views(gapped) == "stale"  # skipped one
        assert service.views.stale
        # The next view-backed read repairs the catalog from the store.
        service.tag_documents([("d", tokenize("solar engine"), [])])
        assert not service.views.stale
        assert service.views.version == onto.store.version
        assert service.fold_views(skipped) == "skipped"  # now behind

    def test_out_of_band_store_mutation_rehydrates_at_read(self, ner):
        onto = AttentionOntology()
        service = OntologyService(onto, ner=ner, tagger_options=TAGGER_OPTIONS)
        # Mutate the shared store without telling the service at all.
        onto.begin_delta("oob")
        onto.add_node(NodeType.EVENT, "crimson reactor overload")
        onto.commit_delta()
        assert service.views.version < onto.store.version
        # Event candidates come off the maintained postings view, so the
        # tag only lands if the stale catalog rehydrated before serving.
        [tagged] = service.tag_documents(
            [("d", tokenize("crimson reactor overload reported"), [])])
        assert "crimson reactor overload" in tagged.event_tags
        assert service.views.version == onto.store.version
        assert service.stats()["views"]["rehydrations"] == 1

    def test_postings_view_identical_through_refresh_stream(self, ner):
        onto = AttentionOntology()
        service = OntologyService(onto, ner=ner, tagger_options=TAGGER_OPTIONS)
        for phrase in ("solar engine", "solar market", "rapid garden"):
            service.refresh([_grow(onto, phrase)])
            postings = service.views.get("tag_postings")
            assert dumps(postings.materialized()) == \
                dumps(postings.recompute())
        assert service.stats()["views"]["deltas_folded"] == 3

    def test_refresh_burst_purges_stale_version_cache_entries(self, ner):
        """Regression: version-keyed LRU entries from superseded store
        versions must be dropped eagerly on refresh, not linger until
        capacity pressure — a refresh burst used to leave one dead
        generation of entries per applied delta."""
        onto = AttentionOntology()
        concept = onto.add_node(NodeType.CONCEPT, "marvel movies")
        entity = onto.add_node(NodeType.ENTITY, "iron man")
        onto.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
        service = OntologyService(onto, ner=ner, cache_size=256,
                                  tagger_options=TAGGER_OPTIONS)
        for round_no in range(8):
            service.neighborhood(concept.node_id, depth=1)
            service.neighborhood(entity.node_id, depth=2)
            service.concepts_of_entity("iron man")
            service.refresh([_grow(onto, f"silent league {round_no}")])
        # After the burst only the *current* version's entries may
        # remain; without the eager purge the cache held one dead
        # generation per refresh (~8x the working set).
        stats = service.stats()["cache"]
        assert stats["size"] == 0  # burst ended on a refresh
        service.neighborhood(concept.node_id, depth=1)
        service.concepts_of_entity("iron man")
        assert service.stats()["cache"]["size"] == 2
        purged = service.metrics.snapshot()["cache.purged"]
        assert purged == 8 * 3  # every superseded entry, eagerly

    def test_purge_keeps_current_version_entries(self, ner):
        onto = AttentionOntology()
        concept = onto.add_node(NodeType.CONCEPT, "marvel movies")
        service = OntologyService(onto, ner=ner, tagger_options=TAGGER_OPTIONS)
        delta = _grow(onto, "quiet archive")
        service.refresh([delta])  # catalog catches up to the store
        service.neighborhood(concept.node_id, depth=1)
        # A redelivered (skipped) delta purges nothing: the entry is
        # keyed to the still-current version.
        service.refresh([delta])
        assert service.stats()["cache"]["size"] == 1
        assert service.neighborhood(concept.node_id, depth=1) == ()
        assert service.stats()["cache"]["hits"] >= 1
