"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.gctsp import GCTSPNet
from repro.core.coverrank import cover_rank
from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.core.phrase import AttentionPhrase, PhraseNormalizer
from repro.errors import OntologyError
from repro.graph.qtig import build_qtig
from repro.text.vectorizer import TfidfVectorizer

WORDS = ["cars", "best", "fuel", "films", "top", "the", "of", "new", "5"]
tokens_list = st.lists(st.sampled_from(WORDS), min_size=1, max_size=8)


@settings(max_examples=30, deadline=None)
@given(st.lists(tokens_list, min_size=1, max_size=3),
       st.lists(tokens_list, min_size=0, max_size=3))
def test_qtig_structural_invariants(queries, titles):
    graph = build_qtig(queries, titles)
    unique_tokens = {t for text in queries + titles for t in text}
    # node count: unique tokens + sos + eos
    assert graph.num_nodes == len(unique_tokens) + 2
    # at most one edge per unordered pair
    seen = set()
    for (u, v) in graph.edges:
        pair = frozenset((u, v))
        assert pair not in seen
        seen.add(pair)
    # adjacency matrices row-normalised
    mats, names = graph.adjacency_matrices()
    for m in mats:
        sums = m.sum(axis=1)
        assert np.all((np.isclose(sums, 0)) | (np.isclose(sums, 1)))


@settings(max_examples=30, deadline=None)
@given(st.lists(tokens_list, min_size=1, max_size=3))
def test_order_nodes_is_permutation_of_positives(queries):
    graph = build_qtig(queries, [])
    candidates = [i for i in range(2, graph.num_nodes)]
    positives = candidates[: max(1, len(candidates) // 2)]
    ordered = GCTSPNet.order_nodes(graph, positives)
    assert sorted(ordered) == sorted(graph.tokens[i] for i in positives)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=20))
def test_ontology_isa_never_cyclic(edge_requests):
    onto = AttentionOntology()
    nodes = [onto.add_node(NodeType.CONCEPT, f"concept {i}") for i in range(9)]
    for a, b in edge_requests:
        if a == b:
            continue
        try:
            onto.add_edge(nodes[a].node_id, nodes[b].node_id, EdgeType.ISA)
        except OntologyError:
            pass  # rejected precisely when it would create a cycle
    # Verify global acyclicity with Kahn's algorithm.
    indeg = {n.node_id: 0 for n in nodes}
    adj = {n.node_id: [] for n in nodes}
    for edge in onto.edges(EdgeType.ISA):
        adj[edge.source].append(edge.target)
        indeg[edge.target] += 1
    queue = [n for n, d in indeg.items() if d == 0]
    seen = 0
    while queue:
        node = queue.pop()
        seen += 1
        for nxt in adj[node]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                queue.append(nxt)
    assert seen == len(nodes)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from(["economy", "cars", "fast", "films"]),
                min_size=1, max_size=4))
def test_normalizer_idempotent(tokens):
    norm = PhraseNormalizer()
    ctx = [tokens + ["context", "words"]]
    first = norm.add(AttentionPhrase(list(tokens), "concept", list(ctx)))
    second = norm.add(AttentionPhrase(list(tokens), "concept", list(ctx)))
    assert second is first
    assert len(norm) <= 1 + 0  # single canonical entry


@settings(max_examples=30, deadline=None)
@given(st.lists(tokens_list, min_size=1, max_size=3),
       st.lists(tokens_list, min_size=1, max_size=3),
       st.integers(1, 4), st.integers(4, 10))
def test_cover_rank_respects_length_band(queries, titles, min_len, max_len):
    for subtitle, _score, _ctr in cover_rank(queries, titles,
                                             min_len=min_len, max_len=max_len):
        assert min_len <= len(subtitle) <= max_len


@settings(max_examples=30, deadline=None)
@given(st.lists(tokens_list, min_size=1, max_size=5), tokens_list, tokens_list)
def test_tfidf_similarity_bounded(corpus, doc_a, doc_b):
    v = TfidfVectorizer().fit(corpus)
    sim = v.similarity(doc_a, doc_b)
    assert -1e-9 <= sim <= 1.0 + 1e-9
    assert v.similarity(doc_a, doc_a) in (0.0, 1.0) or abs(
        v.similarity(doc_a, doc_a) - 1.0) < 1e-9


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_world_build_never_crashes_and_is_consistent(seed):
    from repro.synth.world import WorldConfig, build_world

    world = build_world(WorldConfig(num_extra_domains=1, num_days=3, seed=seed))
    # Entities referenced by concepts/events always exist.
    for concept in world.concepts.values():
        for member in concept.members:
            assert member in world.entities
    for event in world.events.values():
        assert event.entity in world.entities
        assert event.topic in world.topics
