"""Tests for repro.nn.lstm and repro.nn.crf."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.crf import LinearChainCRF
from repro.nn.layers import Embedding, Linear
from repro.nn.lstm import LSTM, BiLSTM, LSTMCell
from repro.nn.optim import Adam


class TestLSTM:
    def test_cell_shapes(self):
        cell = LSTMCell(4, 3)
        h, c = cell(Tensor(np.zeros(4)), Tensor(np.zeros(3)), Tensor(np.zeros(3)))
        assert h.shape == (3,)
        assert c.shape == (3,)

    def test_lstm_output_shape(self):
        out = LSTM(4, 6)(Tensor(np.random.default_rng(0).standard_normal((5, 4))))
        assert out.shape == (5, 6)

    def test_bilstm_output_shape(self):
        out = BiLSTM(4, 6)(Tensor(np.random.default_rng(0).standard_normal((5, 4))))
        assert out.shape == (5, 12)

    def test_reverse_lstm_differs(self):
        x = Tensor(np.random.default_rng(0).standard_normal((5, 4)))
        rng = np.random.default_rng(1)
        fw = LSTM(4, 6, rng=np.random.default_rng(1))(x)
        bw = LSTM(4, 6, rng=np.random.default_rng(1), reverse=True)(x)
        assert not np.allclose(fw.data, bw.data)

    def test_final_state_matches_last_output(self):
        lstm = LSTM(3, 4)
        x = Tensor(np.random.default_rng(0).standard_normal((6, 3)))
        outputs = lstm(x)
        h, _c = lstm.final_state(x)
        assert np.allclose(outputs.data[-1], h.data)

    def test_lstm_learns_sequence_sum_sign(self):
        # Classify whether the sequence sum is positive — needs memory.
        rng = np.random.default_rng(0)
        lstm = LSTM(1, 8, rng=rng)
        head = Linear(8, 2, rng=rng)
        opt = Adam(list(lstm.parameters()) + list(head.parameters()), lr=0.02)
        data = [rng.standard_normal((4, 1)) for _ in range(20)]
        labels = [int(d.sum() > 0) for d in data]
        from repro.nn.functional import cross_entropy

        for _epoch in range(30):
            for seq, label in zip(data, labels):
                opt.zero_grad()
                h, _c = lstm.final_state(Tensor(seq))
                loss = cross_entropy(head(h).reshape(1, 2), [label])
                loss.backward()
                opt.step()
        correct = 0
        for seq, label in zip(data, labels):
            h, _c = lstm.final_state(Tensor(seq))
            correct += int(head(h).data.argmax() == label)
        assert correct >= 18


class TestCRF:
    def test_nll_positive(self):
        crf = LinearChainCRF(3)
        em = Tensor(np.random.default_rng(0).standard_normal((4, 3)))
        assert crf.nll(em, [0, 1, 2, 0]).item() > 0

    def test_decode_length(self):
        crf = LinearChainCRF(3)
        em = np.random.default_rng(0).standard_normal((6, 3))
        assert len(crf.decode(em)) == 6

    def test_decode_empty(self):
        crf = LinearChainCRF(3)
        assert crf.decode(np.zeros((0, 3))) == []

    def test_decode_follows_strong_emissions(self):
        crf = LinearChainCRF(2)
        em = np.array([[10.0, -10.0], [-10.0, 10.0], [10.0, -10.0]])
        assert crf.decode(em) == [0, 1, 0]

    def test_nll_length_mismatch_raises(self):
        crf = LinearChainCRF(2)
        with pytest.raises(ValueError):
            crf.nll(Tensor(np.zeros((3, 2))), [0, 1])

    def test_empty_sequence_raises(self):
        crf = LinearChainCRF(2)
        with pytest.raises(ValueError):
            crf.nll(Tensor(np.zeros((0, 2))), [])

    def test_invalid_num_tags(self):
        with pytest.raises(ValueError):
            LinearChainCRF(0)

    def test_training_learns_transition_pattern(self):
        # Label alternates 0,1,0,1 regardless of input: transitions must learn it.
        rng = np.random.default_rng(0)
        emb = Embedding(4, 6, rng=rng)
        proj = Linear(6, 2, rng=rng)
        crf = LinearChainCRF(2, rng=rng)
        params = list(emb.parameters()) + list(proj.parameters()) + list(crf.parameters())
        opt = Adam(params, lr=0.05)
        seqs = [[0, 1, 2, 3], [3, 2, 1, 0], [1, 1, 2, 2]]
        tags = [0, 1, 0, 1]
        for _epoch in range(40):
            for seq in seqs:
                opt.zero_grad()
                loss = crf.nll(proj(emb(seq)), tags)
                loss.backward()
                opt.step()
        assert crf.decode(proj(emb([2, 0, 3, 1]))) == tags

    def test_partition_exceeds_path_score(self):
        crf = LinearChainCRF(3)
        em = Tensor(np.random.default_rng(1).standard_normal((5, 3)))
        nll = crf.nll(em, [0, 1, 2, 1, 0])
        assert nll.item() > 0  # log Z > score of any single path
