"""Shared fixtures: a small synthetic world, its click logs, taggers, and
session-scoped trained models (training is amortised across the suite)."""

from __future__ import annotations

import pytest

from repro.config import GCTSPConfig
from repro.core.features import NodeFeatureExtractor
from repro.core.gctsp import GCTSPNet, prepare_example
from repro.datasets import build_cmd, build_emd, split_dataset
from repro.synth.querylog import QueryLogGenerator, build_click_graph
from repro.synth.world import WorldConfig, build_world
from repro.text.dependency import DependencyParser


@pytest.fixture(scope="session")
def world():
    return build_world(WorldConfig(num_extra_domains=1, num_days=4, seed=0))


@pytest.fixture(scope="session")
def log_days(world):
    return QueryLogGenerator(world).generate_days()


@pytest.fixture(scope="session")
def click_graph(log_days):
    return build_click_graph(log_days)


@pytest.fixture(scope="session")
def sessions(log_days):
    return [s for day in log_days for s in day.sessions]


@pytest.fixture(scope="session")
def taggers(world):
    return world.register_text_models()


@pytest.fixture(scope="session")
def pos_tagger(taggers):
    return taggers[0]


@pytest.fixture(scope="session")
def ner_tagger(taggers):
    return taggers[1]


@pytest.fixture(scope="session")
def parser(pos_tagger):
    return DependencyParser(pos_tagger)


@pytest.fixture(scope="session")
def extractor(pos_tagger, ner_tagger):
    return NodeFeatureExtractor(pos_tagger, ner_tagger)


@pytest.fixture(scope="session")
def cmd_dataset(world):
    return build_cmd(world, examples_per_concept=2, seed=7)


@pytest.fixture(scope="session")
def emd_dataset(world):
    return build_emd(world, examples_per_event=1, seed=13)


def _prepare(examples, extractor, parser, roles=False):
    out = []
    for e in examples:
        out.append(
            prepare_example(
                e.queries, e.titles, extractor, parser,
                gold_tokens=e.gold_tokens,
                token_roles=e.token_roles if roles else None,
            )
        )
    return out


@pytest.fixture(scope="session")
def cmd_splits(cmd_dataset, extractor, parser):
    train, dev, test = split_dataset(cmd_dataset, seed=0)
    return (
        _prepare(train, extractor, parser),
        _prepare(dev, extractor, parser),
        _prepare(test, extractor, parser),
        (train, dev, test),
    )


@pytest.fixture(scope="session")
def tiny_gctsp_config():
    return GCTSPConfig(num_layers=2, hidden_size=16, num_bases=3,
                       epochs=6, learning_rate=0.02, seed=0)


@pytest.fixture(scope="session")
def trained_concept_model(cmd_splits, tiny_gctsp_config):
    train, _dev, _test, _raw = cmd_splits
    model = GCTSPNet(tiny_gctsp_config)
    model.fit(train[:30])
    return model


@pytest.fixture(scope="session")
def trained_key_element_model(emd_dataset, extractor, parser, tiny_gctsp_config):
    train, _dev, _test = split_dataset(emd_dataset, seed=1)
    examples = _prepare(train[:25], extractor, parser, roles=True)
    model = GCTSPNet(tiny_gctsp_config, num_classes=4)
    model.fit(examples)
    return model
