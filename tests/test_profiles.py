"""Tests for repro.apps.profiles (user interest modeling)."""

import pytest

from repro.apps.profiles import UserProfiler
from repro.core.ontology import AttentionOntology, EdgeType, NodeType


@pytest.fixture
def ontology():
    onto = AttentionOntology()
    category = onto.add_node(NodeType.CATEGORY, "cars")
    concept = onto.add_node(NodeType.CONCEPT, "economy cars")
    civic = onto.add_node(NodeType.ENTITY, "honda civic")
    corolla = onto.add_node(NodeType.ENTITY, "toyota corolla")
    onto.add_edge(category.node_id, concept.node_id, EdgeType.ISA)
    onto.add_edge(concept.node_id, civic.node_id, EdgeType.ISA)
    onto.add_edge(concept.node_id, corolla.node_id, EdgeType.ISA)
    onto.add_edge(civic.node_id, corolla.node_id, EdgeType.CORRELATE)
    topic = onto.add_node(NodeType.TOPIC, "car recall events")
    event = onto.add_node(NodeType.EVENT, "honda civic recalls vehicles")
    onto.add_edge(topic.node_id, event.node_id, EdgeType.ISA)
    return onto


@pytest.fixture
def profiler(ontology):
    return UserProfiler(ontology)


class TestRecording:
    def test_observed_tags_weighted(self, profiler, ontology):
        profile = profiler.record_read("u1", ["honda civic"])
        top = profile.top(ontology, k=1)
        assert top == [("honda civic", 1.0)]

    def test_repeat_reads_accumulate(self, profiler, ontology):
        profiler.record_read("u1", ["honda civic"])
        profile = profiler.record_read("u1", ["honda civic"])
        assert profile.top(ontology, k=1)[0][1] > 1.0

    def test_decay_applied(self, profiler, ontology):
        profiler.record_read("u1", ["honda civic"])
        profile = profiler.record_read("u1", ["economy cars"])
        weights = dict(profile.top(ontology, k=5))
        assert weights["honda civic"] == pytest.approx(0.9)

    def test_unknown_tags_ignored(self, profiler, ontology):
        profile = profiler.record_read("u1", ["not a node"])
        assert profile.top(ontology) == []

    def test_profiles_isolated_per_user(self, profiler, ontology):
        profiler.record_read("u1", ["honda civic"])
        assert profiler.profile("u2").top(ontology) == []


class TestInference:
    def test_parent_concept_inferred(self, profiler, ontology):
        profiler.record_read("u1", ["honda civic"])
        profile = profiler.infer("u1")
        concepts = dict(profile.top(ontology, node_type=NodeType.CONCEPT))
        assert "economy cars" in concepts

    def test_correlated_entity_inferred(self, profiler, ontology):
        profiler.record_read("u1", ["honda civic"])
        profile = profiler.infer("u1")
        entities = dict(profile.top(ontology, node_type=NodeType.ENTITY))
        assert "toyota corolla" in entities

    def test_two_hops_reach_category(self, profiler, ontology):
        profiler.record_read("u1", ["honda civic"])
        profile = profiler.infer("u1", hops=2)
        categories = dict(profile.top(ontology, node_type=NodeType.CATEGORY))
        assert "cars" in categories

    def test_inferred_weight_below_observed(self, profiler, ontology):
        profiler.record_read("u1", ["honda civic"])
        profile = profiler.infer("u1")
        weights = dict(profile.top(ontology, k=10))
        assert weights["economy cars"] < weights["honda civic"]

    def test_inference_does_not_override_observed(self, profiler, ontology):
        profiler.record_read("u1", ["honda civic", "economy cars"])
        profile = profiler.infer("u1")
        weights = dict(profile.top(ontology, k=10))
        assert weights["economy cars"] == pytest.approx(1.0)


class TestRecommendation:
    def test_recommends_unobserved_nodes(self, profiler, ontology):
        profiler.record_read("u1", ["honda civic"])
        recs = [p for p, _w in profiler.recommend_tags("u1")]
        assert "economy cars" in recs
        assert "honda civic" not in recs

    def test_topic_event_extrapolation(self, profiler, ontology):
        # Reading the event suggests the topic (the paper's Brexit example).
        profiler.record_read("u1", ["honda civic recalls vehicles"])
        recs = [p for p, _w in profiler.recommend_tags("u1")]
        assert "car recall events" in recs

    def test_k_limits_output(self, profiler, ontology):
        profiler.record_read("u1", ["honda civic"])
        assert len(profiler.recommend_tags("u1", k=1)) == 1
