"""Tests for repro.synth.world and repro.synth.vocab."""

import pytest

from repro.synth.vocab import DOMAINS
from repro.synth.world import WorldConfig, build_world


class TestSeedDomains:
    def test_concept_members_are_domain_entities(self):
        for domain in DOMAINS:
            for concept in domain.concepts:
                for member in concept.members:
                    assert member in domain.entities, (domain.name, member)

    def test_event_pools_reference_domain_concepts(self):
        for domain in DOMAINS:
            names = {c.phrase for c in domain.concepts}
            for template in domain.events:
                assert template.entity_pool in names

    def test_category_paths_are_three_level(self):
        for domain in DOMAINS:
            assert len(domain.category_path) == 3


class TestBuildWorld:
    def test_deterministic(self):
        w1 = build_world(WorldConfig(num_extra_domains=2, seed=5))
        w2 = build_world(WorldConfig(num_extra_domains=2, seed=5))
        assert list(w1.entities) == list(w2.entities)
        assert {e.phrase for e in w1.events.values()} == {
            e.phrase for e in w2.events.values()
        }

    def test_seed_changes_world(self):
        w1 = build_world(WorldConfig(num_extra_domains=2, seed=1))
        w2 = build_world(WorldConfig(num_extra_domains=2, seed=2))
        assert {e.phrase for e in w1.events.values()} != {
            e.phrase for e in w2.events.values()
        }

    def test_extra_domains_add_entities(self):
        base = build_world(WorldConfig(num_extra_domains=0))
        extended = build_world(WorldConfig(num_extra_domains=3))
        assert len(extended.entities) > len(base.entities)
        assert len(extended.concepts) > len(base.concepts)

    def test_events_within_day_range(self):
        w = build_world(WorldConfig(num_days=5))
        assert all(0 <= e.day < 5 for e in w.events.values())

    def test_event_phrase_contains_entity(self):
        w = build_world(WorldConfig())
        for event in w.events.values():
            assert event.entity in event.phrase

    def test_topics_group_events(self):
        w = build_world(WorldConfig())
        for topic in w.topics.values():
            assert topic.event_ids
            for eid in topic.event_ids:
                assert w.events[eid].topic == topic.phrase


class TestGoldRelations:
    @pytest.fixture(scope="class")
    def world(self):
        return build_world(WorldConfig(num_days=3))

    def test_concept_entity_pairs(self, world):
        pairs = world.gold_concept_entity_pairs()
        assert ("fuel efficient cars", "honda civic") in pairs

    def test_event_involvements_have_roles(self, world):
        triples = world.gold_event_involvements()
        roles = {r for _p, _e, r in triples}
        assert roles <= {"entity", "trigger", "location"}
        assert "entity" in roles and "trigger" in roles

    def test_correlated_entities_symmetric_storage(self, world):
        pairs = world.gold_correlated_entities()
        assert frozenset(("honda civic", "toyota corolla")) in pairs

    def test_events_on_day_partition(self, world):
        total = sum(len(world.events_on_day(d)) for d in range(3))
        assert total == len(world.events)

    def test_register_text_models(self, world):
        pos, ner = world.register_text_models()
        assert pos.tag_word("honda") == "PROPN"
        assert ner.tag(["honda", "civic"])[0] == "B-PROD"
        # Locations registered too.
        assert ner.tag(["london"])[0] == "B-LOC"
