"""Continuous telemetry: collector series math, SLO burn rates, the
flight recorder, and their wiring through the serving fabric.

Everything time-dependent here runs under fake clocks — the collector
derives timestamps from the registry's injectable clock (its snapshot's
``sampled_at`` stamp), and the recorder takes a ``clock`` argument — so
counter rates, burn-rate windows and dump rate limits are asserted
exactly, not approximately.
"""

import asyncio
import json
import os
import time

import pytest

import repro.obs.recorder as recorder_mod
import repro.obs.slo as slo_mod
import repro.obs.timeseries as timeseries_mod
from repro.obs import (
    ANOMALY_KINDS,
    FlightRecorder,
    MetricsCollector,
    MetricsRegistry,
    SeriesRing,
    SloEngine,
    SloSpec,
    configure_collector,
    configure_recorder,
    configure_slo_engine,
    default_slos,
    get_collector,
    get_recorder,
    load_spans,
    write_chrome_trace,
)
from repro.serving.aio import AsyncOntologyService
from repro.serving.rpc import RpcClient, RpcError, RpcServer
from repro.views.catalog import ViewCatalog

ASYNC_TEST_TIMEOUT = 60.0


def run_async(coro, timeout: float = ASYNC_TEST_TIMEOUT):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class FakeClock:
    """Deterministic injectable clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture(autouse=True)
def obs_sandbox():
    """Reset the process-wide recorder/collector/engine after each test
    (several tests call the configure_* entry points)."""
    yield
    collector = timeseries_mod._COLLECTOR
    if collector is not None:
        collector.stop()
    timeseries_mod._COLLECTOR = None
    slo_mod._ENGINE = None
    recorder_mod._RECORDER = None


# ----------------------------------------------------------------------
# SeriesRing
# ----------------------------------------------------------------------
class TestSeriesRing:
    def test_eviction_is_oldest_first(self):
        ring = SeriesRing("s", capacity=3)
        for i in range(5):
            ring.append(float(i), float(i * 10))
        assert len(ring) == 3
        assert ring.samples() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        assert ring.latest() == (4.0, 40.0)
        assert ring.since(3.0) == [(3.0, 30.0), (4.0, 40.0)]

    def test_partial_fill_keeps_insert_order(self):
        ring = SeriesRing("s", capacity=8)
        ring.append(1.0, 1.0)
        ring.append(2.0, 4.0)
        assert ring.samples() == [(1.0, 1.0), (2.0, 4.0)]


# ----------------------------------------------------------------------
# MetricsCollector
# ----------------------------------------------------------------------
class TestCollector:
    def _collector(self, capacity: int = 240):
        clock = FakeClock(100.0)
        registry = MetricsRegistry(clock=clock)
        collector = MetricsCollector(registry, interval=1.0,
                                     capacity=capacity)
        return clock, registry, collector

    def test_snapshot_stamps_sampled_at(self):
        """Satellite: every registry snapshot carries the injectable
        clock's time, and the keys stay sorted."""
        clock, registry, _ = self._collector()
        registry.counter("c").inc(3)
        snap = registry.snapshot()
        assert snap["sampled_at"] == 100.0
        assert list(snap) == sorted(snap)
        clock.advance(5.0)
        assert registry.snapshot()["sampled_at"] == 105.0

    def test_bucketed_snapshot_is_opt_in(self):
        _clock, registry, _ = self._collector()
        h = registry.histogram("lat")
        h.observe(0.01)
        plain = registry.snapshot()["lat"]
        assert "buckets" not in plain and "base" not in plain
        rich = registry.snapshot(buckets=True)["lat"]
        assert rich["base"] == pytest.approx(1e-6)
        assert sum(rich["buckets"].values()) == 1

    def test_first_sample_has_no_derived_series(self):
        _clock, registry, collector = self._collector()
        registry.counter("reqs").inc(5)
        collector.sample()
        assert collector.series("reqs") == [(100.0, 5.0)]
        assert collector.series("reqs.rate") == []

    def test_counter_rate_across_wrapped_ring(self):
        clock, registry, collector = self._collector(capacity=2)
        reqs = registry.counter("reqs")
        # 4 samples into capacity-2 rings: the math must stay exact
        # after eviction wraps the buffer.
        increments = (5, 10, 20, 40)
        for inc in increments:
            reqs.inc(inc)
            collector.sample()
            clock.advance(10.0)
        # raw ring holds the last two cumulative values
        assert collector.series("reqs") == [(120.0, 35.0), (130.0, 75.0)]
        # rates: (15-5)/10, (35-15)/10, (75-35)/10 -> ring keeps last 2
        assert collector.series("reqs.rate") == [(120.0, 2.0), (130.0, 4.0)]

    def test_zero_dt_appends_no_rate(self):
        _clock, registry, collector = self._collector()
        reqs = registry.counter("reqs")
        reqs.inc(1)
        collector.sample()
        reqs.inc(1)
        collector.sample()  # clock did not advance: dt == 0
        assert collector.series("reqs.rate") == []

    def test_gauge_records_level(self):
        clock, registry, collector = self._collector()
        depth = registry.gauge("depth")
        depth.set(3)
        collector.sample()
        clock.advance(1.0)
        depth.set(7)
        collector.sample()
        assert collector.series("depth") == [(100.0, 3.0), (101.0, 7.0)]

    def test_windowed_percentiles_see_only_the_new_window(self):
        clock, registry, collector = self._collector()
        lat = registry.histogram("lat")
        for _ in range(10):
            lat.observe(0.001)
        collector.sample()
        clock.advance(10.0)
        for _ in range(90):
            lat.observe(1.0)
        collector.sample()
        # 90 observations over 10s
        assert collector.latest("lat.rate") == (110.0, 9.0)
        # The window held only 1.0s observations: every windowed
        # percentile clamps to the exact value, even though the
        # lifetime p50 would sit near 0.001.
        for label in ("p50", "p95", "p99"):
            t, value = collector.latest(f"lat.{label}")
            assert t == 110.0
            assert value == pytest.approx(1.0)

    def test_idle_window_appends_rate_but_no_percentiles(self):
        clock, registry, collector = self._collector()
        lat = registry.histogram("lat")
        lat.observe(0.5)
        collector.sample()
        clock.advance(1.0)
        collector.sample()
        clock.advance(1.0)
        lat.observe(0.5)
        collector.sample()
        # the idle middle window recorded rate 0 and skipped percentiles
        assert collector.series("lat.rate") == [(101.0, 0.0), (102.0, 1.0)]
        assert [t for t, _v in collector.series("lat.p95")] == [102.0]

    def test_tail_and_window_readout(self):
        clock, registry, collector = self._collector()
        reqs = registry.counter("reqs")
        for _ in range(5):
            reqs.inc(1)
            collector.sample()
            clock.advance(1.0)
        tail = collector.tail(points=2, prefix="reqs")
        assert set(tail) == {"reqs", "reqs.rate"}
        assert tail["reqs"] == [[103.0, 4.0], [104.0, 5.0]]
        assert len(collector.window("reqs", 2.0)) == 3  # t in [102, 104]
        assert collector.describe()["samples_taken"] == 5

    def test_configure_collector_replaces_global(self):
        registry = MetricsRegistry(clock=FakeClock())
        collector = configure_collector(registry, interval=0.5)
        assert get_collector() is collector
        replacement = configure_collector(registry, interval=0.25)
        assert get_collector() is replacement


# ----------------------------------------------------------------------
# SLO burn rates
# ----------------------------------------------------------------------
class TestSloEngine:
    def _seeded(self, budget: float):
        """Counter samples at t=0,10,20 then a 60s gap, then t=80,90:
        the short window's start (t=60) falls inside the gap."""
        clock = FakeClock(0.0)
        registry = MetricsRegistry(clock=clock)
        collector = MetricsCollector(registry)
        errors = registry.counter("errors")
        total = registry.counter("total")
        plan = [(0.0, 0, 100), (10.0, 0, 100), (20.0, 0, 100),
                (80.0, 40, 100), (90.0, 50, 100)]
        for t, err, tot in plan:
            clock.now = t
            errors.inc(err)
            total.inc(tot)
            collector.sample()
        spec = SloSpec(name="errs", error_series="errors",
                       total_series="total", error_budget=budget,
                       short_window=30.0, long_window=90.0,
                       warn_burn=1.0, page_burn=10.0)
        return SloEngine(collector, [spec]), spec

    def test_burn_windows_straddle_a_sampling_gap(self):
        engine, spec = self._seeded(budget=0.05)
        verdict = engine.evaluate(spec, now=90.0)
        windows = verdict["error_budget"]["windows"]
        # short window [60, 90]: no sample at t=60 -> the baseline is
        # the nearest sample at or before it (t=20), so the delta spans
        # the gap instead of collapsing to zero.
        assert windows["short"]["errors"] == pytest.approx(90.0)
        assert windows["short"]["total"] == pytest.approx(200.0)
        assert windows["short"]["burn"] == pytest.approx(0.45 / 0.05)
        # long window [0, 90]: baseline is the t=0 sample.
        assert windows["long"]["errors"] == pytest.approx(90.0)
        assert windows["long"]["total"] == pytest.approx(400.0)
        assert windows["long"]["burn"] == pytest.approx(0.225 / 0.05)
        # both windows over warn_burn, only one over page_burn -> warn
        assert verdict["verdict"] == "warn"

    def test_page_needs_both_windows_burning(self):
        engine, spec = self._seeded(budget=0.01)
        verdict = engine.evaluate(spec, now=90.0)
        burns = [w["burn"]
                 for w in verdict["error_budget"]["windows"].values()]
        assert min(burns) >= spec.page_burn
        assert verdict["verdict"] == "page"

    def test_healthy_before_the_errors_started(self):
        engine, spec = self._seeded(budget=0.05)
        assert engine.evaluate(spec, now=20.0)["verdict"] == "healthy"

    def test_unknown_when_collector_never_sampled(self):
        collector = MetricsCollector(MetricsRegistry(clock=FakeClock()))
        engine = SloEngine(collector, default_slos())
        assert all(v["verdict"] == "unknown"
                   for v in engine.evaluate_all())

    def test_latency_objective_escalates(self):
        clock = FakeClock(0.0)
        registry = MetricsRegistry(clock=clock)
        collector = MetricsCollector(registry)
        lat = registry.histogram("lat")
        lat.observe(0.01)
        collector.sample()
        clock.advance(1.0)
        lat.observe(0.30)
        collector.sample()
        engine = SloEngine(collector)
        warn_spec = SloSpec(name="lat", latency_series="lat.p95",
                            latency_target=0.25, latency_page_factor=2.0)
        page_spec = SloSpec(name="lat", latency_series="lat.p95",
                            latency_target=0.10, latency_page_factor=2.0)
        ok_spec = SloSpec(name="lat", latency_series="lat.p95",
                          latency_target=1.0)
        assert engine.evaluate(warn_spec)["verdict"] == "warn"
        assert engine.evaluate(page_spec)["verdict"] == "page"
        assert engine.evaluate(ok_spec)["verdict"] == "healthy"

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SloSpec(name="empty")  # no objective at all
        with pytest.raises(ValueError):
            SloSpec(name="b", error_series="e", total_series="t",
                    error_budget=0.0)
        with pytest.raises(ValueError):
            SloSpec(name="w", error_series="e", total_series="t",
                    short_window=60.0, long_window=30.0)

    def test_configure_slo_engine_installs_defaults(self):
        collector = MetricsCollector(MetricsRegistry(clock=FakeClock()))
        engine = configure_slo_engine(collector)
        assert [spec.name for spec in engine.specs] \
            == [spec.name for spec in default_slos()]


# ----------------------------------------------------------------------
# FlightRecorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_evicts_oldest_first(self):
        recorder = FlightRecorder(capacity=3, clock=FakeClock(50.0))
        for i in range(5):
            recorder.record("ring.epoch_flip", f"shard-{i}", epoch=i)
        events = recorder.events()
        assert [e["seq"] for e in events] == [3, 4, 5]
        assert [e["component"] for e in events] \
            == ["shard-2", "shard-3", "shard-4"]
        assert recorder.events_recorded == 5

    def test_anomaly_defaults_follow_the_taxonomy(self):
        recorder = FlightRecorder(clock=FakeClock())
        assert recorder.record("rpc.error", "rpc.server.x")["anomaly"]
        assert not recorder.record("batcher.deadline_flush",
                                   "aio.batcher")["anomaly"]
        assert not recorder.record("ring.epoch_flip",
                                   "cluster.parent")["anomaly"]
        assert recorder.record("batcher.deadline_flush", "aio.batcher",
                               anomaly=True)["anomaly"]  # explicit wins
        assert "batcher.deadline_flush" not in ANOMALY_KINDS

    def test_anomaly_auto_dump_names_the_component(self, tmp_path):
        clock = FakeClock(1000.0)
        recorder = FlightRecorder(str(tmp_path), process="t",
                                  min_dump_interval=10.0, clock=clock)
        recorder.record("views.rehydrate", "serving.views", version=7)
        assert recorder.dumps_written == 1
        path = recorder.last_dump_path
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8")]
        header, event = lines
        assert header["reason"] == "views.rehydrate"
        assert header["process"] == "t"
        assert event["component"] == "serving.views"
        assert event["version"] == 7

    def test_auto_dumps_are_rate_limited(self, tmp_path):
        clock = FakeClock(0.0)
        recorder = FlightRecorder(str(tmp_path), process="t",
                                  min_dump_interval=5.0, clock=clock)
        recorder.record("rpc.error", "rpc.server.a")
        recorder.record("rpc.error", "rpc.server.b")  # inside the limit
        assert recorder.dumps_written == 1
        clock.advance(5.0)
        recorder.record("rpc.error", "rpc.server.c")
        assert recorder.dumps_written == 2
        # explicit dumps are never limited
        assert recorder.dump(reason="manual") is not None
        assert recorder.dumps_written == 3

    def test_non_anomalies_never_dump(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path), clock=FakeClock())
        for _ in range(10):
            recorder.record("batcher.deadline_flush", "aio.batcher")
        assert recorder.dumps_written == 0

    def test_dump_without_a_directory(self, tmp_path):
        recorder = FlightRecorder(clock=FakeClock())
        recorder.record("rpc.error", "rpc.server.x")  # no dir: ring only
        assert recorder.dump() is None
        explicit = str(tmp_path / "ring.jsonl")
        assert recorder.dump(path=explicit) == explicit
        assert os.path.exists(explicit)

    def test_rehydrate_reports_to_the_recorder(self):
        configure_recorder(None, process="t")
        catalog = ViewCatalog()
        catalog.rehydrate(3, count=False)  # initial hydration: silent
        assert get_recorder().events() == []
        catalog.rehydrate(5)
        [event] = get_recorder().events()
        assert event["kind"] == "views.rehydrate"
        assert event["version"] == 5


# ----------------------------------------------------------------------
# fault injection through the serving stack
# ----------------------------------------------------------------------
class _FaultyBackend:
    """Minimal serving backend: one endpoint that can be slow or fail."""

    version = 0

    def neighborhood(self, node_id, depth=1, edge_type=None):
        if node_id == "slow":
            time.sleep(0.05)
            return ("ok",)
        if node_id == "boom":
            raise RuntimeError("injected fault")
        return ("ok",)

    def stats(self):
        return {"backend": "faulty"}


class TestServingFaults:
    def test_slow_call_and_error_reach_the_recorder(self, tmp_path):
        """A forced slow call and an injected failure both produce
        flight-recorder events (and dumps) naming the failing
        component — the PR's acceptance fault-injection check."""
        configure_recorder(str(tmp_path), process="t",
                           slow_call_seconds=0.01, min_dump_interval=0.0)
        registry = MetricsRegistry()

        async def drive():
            async with AsyncOntologyService(_FaultyBackend(),
                                            registry=registry) as service:
                server = RpcServer(service, registry=registry)
                host, port = await server.start()
                client = await RpcClient.connect(host, port,
                                                 registry=registry)
                try:
                    result = await client.call("neighborhood", "slow")
                    assert tuple(result) == ("ok",)
                    with pytest.raises(RpcError):
                        await client.call("neighborhood", "boom")
                finally:
                    await client.close()
                    await server.close()

        run_async(drive())
        kinds = {(e["kind"], e["component"])
                 for e in get_recorder().events()}
        assert ("rpc.slow_call", "rpc.server.neighborhood") in kinds
        assert ("rpc.error", "rpc.server.neighborhood") in kinds
        dumps = sorted(tmp_path.glob("flight-t-*.jsonl"))
        assert dumps, "anomalies must auto-dump when a dir is configured"
        dumped = dumps[-1].read_text(encoding="utf-8")
        assert "rpc.server.neighborhood" in dumped

    def test_deadline_flush_is_recorded(self):
        configure_recorder(None, process="t")

        class _TagBackend(_FaultyBackend):
            def tag_documents(self, documents):
                return ["tagged"] * len(documents)

        async def drive_tag():
            # a lone mergeable batch can only flush on its deadline
            async with AsyncOntologyService(
                    _TagBackend(), max_batch_size=64, max_delay=0.005,
                    registry=MetricsRegistry()) as service:
                assert await service.tag_documents(["doc"]) == ["tagged"]

        run_async(drive_tag())
        events = [e for e in get_recorder().events()
                  if e["kind"] == "batcher.deadline_flush"]
        assert events and events[0]["component"] == "aio.batcher"

    def test_obs_watch_and_dump_round_trip(self):
        registry = MetricsRegistry()
        collector = configure_collector(registry, interval=30.0)
        configure_slo_engine(collector)
        configure_recorder(None, process="t")

        async def drive():
            async with AsyncOntologyService(_FaultyBackend(),
                                            registry=registry) as service:
                await service.neighborhood("n1")
                watch = await service.obs_watch(points=5)
                dump = await service.obs_dump()
                return watch, dump

        watch, dump = run_async(drive())
        # the pull path samples on demand (no background thread)
        assert watch["collector"]["samples_taken"] >= 1
        assert isinstance(watch["series"], dict)
        assert {v["slo"] for v in watch["slo"]} \
            == {"serving-latency", "rpc-errors"}
        assert watch["recorder"]["process"] == "t"
        assert dump["path"] is None  # no recorder dir configured
        assert isinstance(dump["events"], list)

    def test_obs_watch_without_a_collector(self):
        configure_recorder(None, process="t")
        timeseries_mod._COLLECTOR = None

        async def drive():
            async with AsyncOntologyService(
                    _FaultyBackend(),
                    registry=MetricsRegistry()) as service:
                return await service.obs_watch()

        watch = run_async(drive())
        assert watch["collector"] is None
        assert watch["series"] == {} and watch["slo"] == []

    def test_cli_watch_renders_a_live_frame(self, capsys):
        """``cli watch``'s renderer must handle a real ``obs_watch``
        payload — regression: it read ``verdict["name"]`` where the SLO
        engine keys its verdicts as ``"slo"``, crashing on the second
        output line."""
        from repro.cli import _print_watch

        registry = MetricsRegistry()
        collector = configure_collector(registry, interval=30.0)
        configure_slo_engine(collector)
        configure_recorder(None, process="t")

        async def drive():
            async with AsyncOntologyService(_FaultyBackend(),
                                            registry=registry) as service:
                await service.neighborhood("n1")
                return await service.obs_watch(points=5)

        _print_watch(run_async(drive()))
        out = capsys.readouterr().out
        assert "slo serving-latency" in out and "slo rpc-errors" in out
        assert "recorder: events=" in out


# ----------------------------------------------------------------------
# torn span logs (satellite: tolerant chrome-trace export)
# ----------------------------------------------------------------------
class TestTornSpanLog:
    def _span(self, name: str, ts: float) -> dict:
        return {"name": name, "trace": "t1", "span": "s1",
                "process": "serve", "ts": ts, "dur": 0.001}

    def test_torn_tail_is_skipped_with_a_warning(self, tmp_path):
        log = tmp_path / "spans-serve.jsonl"
        good = [self._span("a", 1.0), self._span("b", 2.0)]
        with open(log, "w", encoding="utf-8") as fh:
            for span in good:
                fh.write(json.dumps(span) + "\n")
            fh.write(json.dumps({"looks": "like json",
                                 "but": "not a span"}) + "\n")
            # a process died mid-write: the classic torn tail
            fh.write('{"name": "c", "trace": "t1", "sp')
        with pytest.warns(UserWarning, match="malformed span line"):
            spans = load_spans(str(tmp_path))
        assert [span["name"] for span in spans] == ["a", "b"]
        out = tmp_path / "trace.json"
        with pytest.warns(UserWarning):
            exported = write_chrome_trace(str(tmp_path), str(out))
        assert exported == 2
        payload = json.loads(out.read_text(encoding="utf-8"))
        names = {event.get("name") for event in payload["traceEvents"]}
        assert {"a", "b"} <= names

    def test_clean_logs_warn_nothing(self, tmp_path):
        log = tmp_path / "spans-serve.jsonl"
        log.write_text(json.dumps(self._span("a", 1.0)) + "\n",
                       encoding="utf-8")
        spans = load_spans(str(tmp_path))
        assert len(spans) == 1
