"""Tests for repro.core.store: indexes, deltas, snapshots, invariants."""

import pytest

from repro.core.ontology import AttentionOntology
from repro.core.serialize import (
    delta_from_dict,
    delta_to_dict,
    load_deltas,
    save_deltas,
)
from repro.core.store import EdgeType, NodeType, OntologyDelta, OntologyStore
from repro.errors import DeltaGapError, OntologyError


@pytest.fixture
def store():
    s = OntologyStore()
    concept = s.add_node(NodeType.CONCEPT, "fuel efficient cars")
    entity = s.add_node(NodeType.ENTITY, "honda civic")
    category = s.add_node(NodeType.CATEGORY, "cars")
    s.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
    s.add_edge(category.node_id, concept.node_id, EdgeType.ISA)
    return s


class TestPartitionsAndIndexes:
    def test_type_partitioned_counts(self, store):
        assert store.count(NodeType.CONCEPT) == 1
        assert store.count(NodeType.ENTITY) == 1
        assert store.count() == 3

    def test_nodes_with_token(self, store):
        hits = store.nodes_with_token("cars", NodeType.CONCEPT)
        assert [n.phrase for n in hits] == ["fuel efficient cars"]
        assert store.nodes_with_token("cars", NodeType.ENTITY) == []

    def test_candidates_union_over_tokens(self, store):
        store.add_node(NodeType.CONCEPT, "detective fiction")
        hits = store.candidates(["fuel", "fiction"], NodeType.CONCEPT)
        assert {n.phrase for n in hits} == {"fuel efficient cars",
                                           "detective fiction"}

    def test_candidates_no_overlap_empty(self, store):
        assert store.candidates(["gardening"], NodeType.CONCEPT) == []

    def test_contained_phrases_contiguous_only(self, store):
        tokens = "best fuel efficient cars of 2020".split()
        hits = store.contained_phrases(tokens, NodeType.CONCEPT)
        assert [n.phrase for n in hits] == ["fuel efficient cars"]
        # Shared tokens but not contiguous: no match.
        scattered = "fuel prices hurt efficient compact cars".split()
        assert store.contained_phrases(scattered, NodeType.CONCEPT) == []

    def test_index_covers_new_nodes(self, store):
        store.add_node(NodeType.EVENT, "honda recalls civic models")
        hits = store.candidates(["recalls"], NodeType.EVENT)
        assert len(hits) == 1


class TestInvariants:
    def test_isa_cycle_rejected(self, store):
        concept = store.find(NodeType.CONCEPT, "fuel efficient cars")
        category = store.find(NodeType.CATEGORY, "cars")
        with pytest.raises(OntologyError):
            store.add_edge(concept.node_id, category.node_id, EdgeType.ISA)

    def test_deep_isa_cycle_rejected(self, store):
        entity = store.find(NodeType.ENTITY, "honda civic")
        category = store.find(NodeType.CATEGORY, "cars")
        with pytest.raises(OntologyError):
            store.add_edge(entity.node_id, category.node_id, EdgeType.ISA)

    def test_alias_merge_on_duplicate_phrase(self, store):
        node = store.find(NodeType.CONCEPT, "fuel efficient cars")
        store.add_alias(node.node_id, "economical cars")
        # Adding the alias phrase as a node merges into the alias target.
        merged = store.add_node(NodeType.CONCEPT, "economical cars",
                                payload={"x": 1})
        assert merged.node_id == node.node_id
        assert node.payload["x"] == 1
        assert store.count(NodeType.CONCEPT) == 1

    def test_alias_is_exact_match_lookup(self, store):
        node = store.find(NodeType.CONCEPT, "fuel efficient cars")
        store.add_alias(node.node_id, "economical cars")
        assert store.find(NodeType.CONCEPT, "Economical Cars") is node

    def test_version_bumps_on_mutation(self, store):
        before = store.version
        store.add_node(NodeType.TOPIC, "car recalls")
        assert store.version == before + 1
        # Idempotent re-add without payload is not a mutation.
        store.add_node(NodeType.TOPIC, "car recalls")
        assert store.version == before + 1

    def test_snapshot_records_version_and_stats(self, store):
        snap = store.snapshot()
        assert snap.version == store.version
        assert snap.stats == store.stats()
        assert store.snapshots() == [snap]


class TestDeltas:
    def _record_build(self):
        store = OntologyStore()
        store.begin_delta("build")
        concept = store.add_node(NodeType.CONCEPT, "marvel movies",
                                 payload={"support": 3})
        entity = store.add_node(NodeType.ENTITY, "iron man")
        store.add_alias(concept.node_id, "marvel films")
        store.add_edge(concept.node_id, entity.node_id, EdgeType.ISA,
                       weight=0.8)
        store.update_payload(entity.node_id, {"seen": 1})
        delta = store.commit_delta()
        return store, delta

    def test_replay_reproduces_store(self):
        store, delta = self._record_build()
        fresh = OntologyStore()
        fresh.apply_delta(delta)
        assert fresh.stats() == store.stats()
        assert fresh.version == store.version
        node = fresh.find(NodeType.CONCEPT, "marvel films")
        assert node is not None and node.phrase == "marvel movies"
        assert fresh.find(NodeType.ENTITY, "iron man").payload == {"seen": 1}

    def test_serialize_round_trip_of_delta_built_store(self, tmp_path):
        store, delta = self._record_build()
        path = tmp_path / "deltas.json"
        save_deltas([delta], str(path))
        fresh = OntologyStore()
        for loaded in load_deltas(str(path)):
            fresh.apply_delta(loaded)
        assert fresh.stats() == store.stats()
        edges = fresh.edges(EdgeType.ISA)
        assert len(edges) == 1 and edges[0].weight == 0.8

    def test_delta_counters(self):
        _store, delta = self._record_build()
        assert delta.nodes_added == 2
        assert delta.edges_added == 1
        assert delta.stage == "build"
        assert len(delta) == 5

    def test_apply_delta_version_mismatch_rejected(self):
        _store, delta = self._record_build()
        fresh = OntologyStore()
        fresh.add_node(NodeType.TOPIC, "already ahead")
        with pytest.raises(OntologyError):
            fresh.apply_delta(delta)

    def test_truncated_delta_rejected_before_mutation(self):
        _store, delta = self._record_build()
        delta.ops.pop()  # simulate a truncated batch
        fresh = OntologyStore()
        with pytest.raises(OntologyError):
            fresh.apply_delta(delta)
        assert fresh.version == 0 and len(fresh) == 0  # untouched

    def test_unknown_op_rejected(self):
        fresh = OntologyStore()
        bad = OntologyDelta(version=1, ops=[{"op": "explode"}])
        with pytest.raises(OntologyError):
            fresh.apply_delta(bad)

    def test_nested_delta_recording(self):
        store = OntologyStore()
        store.begin_delta("outer")
        store.add_node(NodeType.CONCEPT, "a")
        store.begin_delta("inner")
        store.add_node(NodeType.CONCEPT, "b")
        assert store.commit_delta() is None  # inner commit: still recording
        delta = store.commit_delta()
        assert delta is not None and delta.nodes_added == 2

    def test_delta_dict_round_trip(self):
        _store, delta = self._record_build()
        clone = delta_from_dict(delta_to_dict(delta))
        assert clone.stage == delta.stage
        assert clone.base_version == delta.base_version
        assert clone.version == delta.version
        fresh = OntologyStore()
        fresh.apply_delta(clone)
        assert fresh.stats() == _store.stats()

    def test_commit_without_begin_rejected(self):
        with pytest.raises(OntologyError):
            OntologyStore().commit_delta()


class TestCompaction:
    def _record_days(self):
        """Three delta batches simulating a growing ontology."""
        store = OntologyStore()
        store.begin_delta("day1")
        concept = store.add_node(NodeType.CONCEPT, "fuel efficient cars")
        entity = store.add_node(NodeType.ENTITY, "honda civic")
        store.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
        store.add_alias(concept.node_id, "economical cars")
        first = store.commit_delta()
        store.begin_delta("day2")
        other = store.add_node(NodeType.ENTITY, "toyota prius")
        store.add_edge(concept.node_id, other.node_id, EdgeType.ISA)
        store.update_payload(entity.node_id, {"support": 3})
        second = store.commit_delta()
        store.begin_delta("day3")
        topic = store.add_node(NodeType.TOPIC, "hybrid car reviews")
        store.add_edge(topic.node_id, other.node_id, EdgeType.INVOLVE)
        third = store.commit_delta()
        return store, [first, second, third]

    def test_bootstrap_equals_full_replay(self):
        full, deltas = self._record_days()
        # Compact the two-delta prefix; bootstrap from snapshot + tail.
        prefix = OntologyStore.bootstrap(None, deltas[:2])
        snapshot = prefix.compact()
        cold = OntologyStore.bootstrap(snapshot, deltas)
        replayed = OntologyStore.bootstrap(None, deltas)
        assert cold.stats() == replayed.stats() == full.stats()
        assert cold.version == replayed.version == full.version
        node = cold.find(NodeType.ENTITY, "honda civic")
        assert node.payload == {"support": 3}
        assert node.node_id == full.find(NodeType.ENTITY,
                                         "honda civic").node_id

    def test_bootstrap_skips_already_compacted_deltas(self):
        full, deltas = self._record_days()
        snapshot = OntologyStore.bootstrap(None, deltas).compact()
        # The whole stream overlaps the snapshot: everything is skipped.
        cold = OntologyStore.bootstrap(snapshot, deltas)
        assert cold.stats() == full.stats() and cold.version == full.version

    def test_bootstrap_rejects_tail_straddling_snapshot(self):
        """Regression: a tail batch whose base version predates the
        snapshot but whose end is ahead of it must raise DeltaGapError
        naming the overlapping range — part of the batch is already
        folded into the snapshot, so replaying it would double-apply
        (and silently merge payload/alias ops a second time)."""
        _full, deltas = self._record_days()
        snapshot = OntologyStore.bootstrap(None, deltas[:2]).compact()
        straddling = OntologyDelta(
            stage="merged", base_version=deltas[1].base_version,
            version=deltas[2].version, ops=deltas[1].ops + deltas[2].ops)
        with pytest.raises(DeltaGapError, match="double-apply") as err:
            OntologyStore.bootstrap(snapshot, [straddling])
        # The message names the already-applied overlap range.
        assert f"{deltas[1].base_version + 1}..{deltas[1].version}" in \
            str(err.value)

    def test_snapshot_preserves_ids_version_and_counter(self):
        from repro.core.serialize import store_from_dict, store_to_dict

        full, _deltas = self._record_days()
        clone = store_from_dict(store_to_dict(full))
        assert clone.version == full.version
        assert clone._counter == full._counter
        for node in full.nodes():
            assert clone.node(node.node_id).phrase == node.phrase
        assert clone.find(NodeType.CONCEPT, "economical cars") is not None

    def test_new_deltas_carry_explicit_node_ids(self):
        full, deltas = self._record_days()
        for delta in deltas:
            for op in delta.ops:
                if op["op"] == "node":
                    assert op["node_id"] in full._by_id
        # Replay on a store whose counter diverged still lands same ids.
        fresh = OntologyStore()
        for delta in deltas:
            fresh.apply_delta(delta)
        assert {n.node_id for n in fresh.nodes()} == {
            n.node_id for n in full.nodes()}

    def test_explicit_id_conflicts_rejected(self):
        store = OntologyStore()
        store.add_node(NodeType.CONCEPT, "space probes", node_id="con_000009")
        with pytest.raises(OntologyError):
            store.add_node(NodeType.ENTITY, "voyager 1", node_id="con_000009")
        with pytest.raises(OntologyError):
            store.add_node(NodeType.CONCEPT, "space probes",
                           node_id="con_000010")
        # Counter advanced past the explicit id: no collision follows.
        auto = store.add_node(NodeType.ENTITY, "voyager 1")
        assert auto.node_id == "ent_000010"

    def test_snapshot_preserves_contested_alias_winner(self):
        from repro.core.serialize import (
            store_from_dict,
            store_to_dict,
        )

        store = OntologyStore()
        early = store.add_node(NodeType.CONCEPT, "alpha movies")
        late = store.add_node(NodeType.CONCEPT, "beta movies")
        store.add_alias(late.node_id, "shared phrase")   # first claim wins
        store.add_alias(early.node_id, "shared phrase")  # losing claim
        assert store.find(NodeType.CONCEPT,
                          "shared phrase").node_id == late.node_id
        clone = store_from_dict(store_to_dict(store))
        assert clone.find(NodeType.CONCEPT,
                          "shared phrase").node_id == late.node_id

    def test_store_file_round_trip(self, tmp_path):
        from repro.core.serialize import load_store, save_store

        full, deltas = self._record_days()
        prefix = OntologyStore.bootstrap(None, deltas[:2])
        path = tmp_path / "snapshot.json"
        save_store(prefix, str(path))
        cold = load_store(str(path))
        assert cold.version == prefix.version
        cold.apply_delta(deltas[2])
        assert cold.stats() == full.stats()


class TestFacade:
    def test_facade_wraps_given_store(self, store):
        onto = AttentionOntology(store=store)
        assert onto.store is store
        assert len(onto) == len(store)
        assert onto.version == store.version

    def test_facade_mutations_reach_store(self):
        onto = AttentionOntology()
        onto.begin_delta("x")
        node = onto.add_node(NodeType.CONCEPT, "space probes")
        onto.update_payload(node.node_id, {"k": "v"})
        delta = onto.commit_delta()
        fresh = AttentionOntology()
        fresh.apply_delta(delta)
        assert fresh.find(NodeType.CONCEPT, "space probes").payload == {"k": "v"}
