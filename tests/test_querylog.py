"""Tests for repro.synth.querylog and repro.synth.documents."""

import pytest

from repro.synth.documents import DocumentGenerator
from repro.synth.querylog import QueryLogGenerator, build_click_graph, mention_with_insertion
from repro.synth.world import WorldConfig, build_world
from repro.text.tokenizer import tokenize


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(num_days=3, seed=2))


@pytest.fixture(scope="module")
def days(world):
    return QueryLogGenerator(world).generate_days()


class TestMentionInsertion:
    def test_inserts_before_last_two_tokens(self):
        out = mention_with_insertion("hayao miyazaki animated films", "famous")
        assert out == "hayao miyazaki famous animated films"

    def test_short_phrase_prefixes(self):
        assert mention_with_insertion("pop singers", "famous") == "famous pop singers"

    def test_none_modifier_identity(self):
        assert mention_with_insertion("pop singers", None) == "pop singers"

    def test_tokens_stay_in_order(self):
        phrase = "family road trip vehicles"
        out = tokenize(mention_with_insertion(phrase, "best"))
        gold = tokenize(phrase)
        it = iter(out)
        assert all(tok in it for tok in gold)  # subsequence


class TestQueryLog:
    def test_day_count(self, days):
        assert len(days) == 3

    def test_deterministic(self, world):
        d1 = QueryLogGenerator(world, seed=9).generate_day(0)
        d2 = QueryLogGenerator(world, seed=9).generate_day(0)
        assert [(r.query, r.doc_id, r.count) for r in d1.clicks] == [
            (r.query, r.doc_id, r.count) for r in d2.clicks
        ]

    def test_clicks_positive(self, days):
        assert all(r.count >= 1 for d in days for r in d.clicks)

    def test_event_queries_present_on_event_days(self, world, days):
        for day in days:
            for eid in day.event_ids:
                event = world.events[eid]
                queries = set(day.queries)
                assert any(event.trigger in q for q in queries)

    def test_sessions_reference_concept_queries(self, world, days):
        concepts = set(world.concepts)
        entity_names = set(world.entities)
        for day in days:
            for first, follow in day.sessions:
                assert any(c in first for c in concepts)
                assert follow in entity_names

    def test_concept_subsampling(self, world):
        gen = QueryLogGenerator(world, concepts_per_day=3)
        day = gen.generate_day(0)
        mentioned = {c for c in world.concepts if any(c in q for q in day.queries)}
        assert len(mentioned) <= 3

    def test_event_titles_have_subtitle_structure(self, world, days):
        # Event headlines must contain a comma (CoverRank's split signal).
        for day in days:
            event_titles = [
                r.title for r in day.clicks
                if any(world.events[e].phrase in r.query for e in day.event_ids)
            ]
            for title in event_titles:
                assert "," in title or ":" in title


class TestBuildClickGraph:
    def test_aggregates_all_days(self, days):
        g = build_click_graph(days)
        assert g.num_queries > 0
        assert g.num_docs == len({r.doc_id for d in days for r in d.clicks})

    def test_titles_preserved(self, days):
        g = build_click_graph(days)
        some = days[0].clicks[0]
        assert g.title(some.doc_id) == some.title
        assert g.category(some.doc_id) == some.category


class TestDocumentGenerator:
    def test_concept_document_omits_concept_phrase(self, world):
        gen = DocumentGenerator(world)
        phrase = next(iter(world.concepts))
        doc = gen.concept_document(phrase)
        assert phrase not in doc.title
        assert doc.gold_concepts == {phrase}
        assert doc.key_entities

    def test_concept_document_mentions_members(self, world):
        gen = DocumentGenerator(world)
        phrase = next(iter(world.concepts))
        doc = gen.concept_document(phrase)
        members = set(world.concepts[phrase].members)
        text = " ".join(doc.all_tokens)
        assert any(m in text for m in members)

    def test_event_document_leads_with_phrase(self, world):
        gen = DocumentGenerator(world)
        eid = next(iter(world.events))
        doc = gen.event_document(eid)
        assert world.events[eid].phrase in doc.title

    def test_corpus_mix(self, world):
        docs = DocumentGenerator(world).corpus(num_concept_docs=5, num_event_docs=4)
        assert len(docs) == 9
        assert sum(1 for d in docs if d.gold_events) == 4

    def test_doc_ids_unique(self, world):
        docs = DocumentGenerator(world).corpus(6, 3)
        ids = [d.doc_id for d in docs]
        assert len(ids) == len(set(ids))
