"""Binary wire codec, negotiation fallback, pipelined scatter reads and
remote-cluster byte-identity on the binary path (DESIGN.md §10).

The JSON wire is the oracle throughout: every binary-path result must be
``rpc.dumps``-byte-identical to what the JSON path returns, and a binary
client facing an old JSON-only server must degrade to JSON silently
instead of hanging on the version skew.
"""

import json
import socket
import threading

import pytest

from repro.cluster import ClusterService, RemoteClusterService
from repro.cluster.remote import RemoteShardReplica
from repro.cluster.shards import ShardedStoreView
from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.core.store import OntologyStore
from repro.errors import ReproError, SegmentIntegrityError
from repro.replication import DeltaLog, PublisherThread, SnapshotCatalog
from repro.serving import OntologyService
from repro.serving.rpc import (
    BINARY_CODEC_VERSION,
    BINARY_MAGIC,
    _canonical_bytes,
    dumps,
    dumps_binary,
    is_binary_frame,
    loads_binary,
    read_frame_sync,
    write_frame_sync,
)
from repro.text.ner import NerTagger
from repro.text.tokenizer import tokenize

TAGGER_OPTIONS = {"coherence_threshold": 0.01, "lcs_threshold": 0.6}


def _sample_ontology():
    onto = AttentionOntology()
    onto.begin_delta("build")
    concept = onto.add_node(NodeType.CONCEPT, "marvel movies")
    for name in ("iron man", "thor", "hulk", "black widow", "wasp"):
        entity = onto.add_node(NodeType.ENTITY, name)
        onto.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
    onto.add_alias(concept.node_id, "mcu films")
    delta = onto.commit_delta()
    return onto, delta


# ----------------------------------------------------------------------
# binary frame codec
# ----------------------------------------------------------------------
class TestBinaryCodec:
    def test_values_round_trip_byte_identical(self):
        onto, _delta = _sample_ontology()
        node = onto.find(NodeType.CONCEPT, "marvel movies")
        values = [
            None, True, False, 1, 1.0, -7, 2 ** 70, 0.25, "héllo wörld",
            ["a", "b", "c"], (1, "two", 3.0), {"k": [None, {"n": 2}]},
            {"__esc__": "dunder", "__dc__": "shield"},
            {1.5, "x", None}, NodeType.CONCEPT, EdgeType.CORRELATE,
            node, onto.nodes(), onto.store.edges(),
            {"analysis": onto.nodes()[:2], "count": 5},
        ]
        for value in values:
            frame = dumps_binary(value)
            assert is_binary_frame(frame)
            assert dumps(loads_binary(frame)) == dumps(value), value

    def test_int_vs_float_distinction_survives(self):
        assert dumps(loads_binary(dumps_binary(1))) == b"1"
        assert dumps(loads_binary(dumps_binary(1.0))) == b"1.0"

    def test_json_frames_are_not_binary(self):
        assert not is_binary_frame(dumps({"a": 1}))
        assert is_binary_frame(BINARY_MAGIC + b"\x01")

    def test_codec_version_mismatch_rejected(self):
        frame = bytearray(dumps_binary([1, 2, 3]))
        frame[len(BINARY_MAGIC)] = BINARY_CODEC_VERSION + 1
        with pytest.raises(ReproError, match="codec version"):
            loads_binary(bytes(frame))

    def test_truncated_binary_frame_rejected(self):
        frame = dumps_binary({"k": ["deep", {"er": 1}]})
        with pytest.raises((ReproError, SegmentIntegrityError)):
            loads_binary(frame[: len(frame) - 3])


# ----------------------------------------------------------------------
# negotiation: a binary client against an old JSON-only server
# ----------------------------------------------------------------------
def _serve_old_worker(server: socket.socket, negotiate_reply) -> None:
    """A stub shard worker speaking only JSON envelopes.  ``negotiate``
    is answered by ``negotiate_reply`` (an error for a pre-binary
    server, or a version-skewed refusal); ``describe`` works."""
    conn, _addr = server.accept()
    with conn:
        while True:
            frame = read_frame_sync(conn)
            if frame is None:
                break
            request = json.loads(frame.decode("utf-8"))
            response = {"id": request.get("id")}
            method = request.get("method")
            if method == "negotiate":
                response.update(negotiate_reply)
            elif method == "describe":
                response["result"] = {"shard": 0, "owned": 0}
            else:
                response["error"] = {"type": "ReproError",
                                     "message": f"unknown {method!r}"}
            write_frame_sync(conn, _canonical_bytes(response))


class TestNegotiationFallback:
    def _connect_against(self, negotiate_reply) -> RemoteShardReplica:
        server = socket.create_server(("127.0.0.1", 0))
        server.settimeout(10.0)
        thread = threading.Thread(target=_serve_old_worker,
                                  args=(server, negotiate_reply),
                                  daemon=True)
        thread.start()
        port = server.getsockname()[1]
        try:
            return RemoteShardReplica(0, "127.0.0.1", port, timeout=10.0,
                                      wire="binary")
        finally:
            server.close()

    def test_old_server_without_negotiate_falls_back_to_json(self):
        """A pre-binary worker errors on the unknown method; the client
        must degrade to JSON and keep working — not hang or die."""
        proxy = self._connect_against(
            {"error": {"type": "ReproError",
                       "message": "unknown shard method 'negotiate'"}})
        assert proxy.wire == "json"
        assert proxy.describe() == {"shard": 0, "owned": 0}
        proxy.close()

    def test_codec_version_skew_stays_json(self):
        """A server that knows ``negotiate`` but speaks a different
        codec version answers ``wire: json`` — the client honours it."""
        proxy = self._connect_against(
            {"result": {"wire": "json",
                        "codec": BINARY_CODEC_VERSION + 1}})
        assert proxy.wire == "json"
        assert proxy.describe() == {"shard": 0, "owned": 0}
        proxy.close()

    def test_unknown_wire_rejected(self):
        with pytest.raises(ReproError, match="wire"):
            RemoteShardReplica(0, "127.0.0.1", 1, wire="msgpack")


# ----------------------------------------------------------------------
# pipelined scatter: merged results identical to the sequential path
# ----------------------------------------------------------------------
class _PipelinedReplica:
    """A local :class:`ShardReplica` wrapped in the begin/finish
    pipelining interface a :class:`RemoteShardReplica` exposes, with the
    actual work deferred to ``finish_call`` — so the view's scatter
    paths exercise the dispatch-all-then-collect ordering."""

    def __init__(self, replica) -> None:
        self._replica = replica
        self._pending: dict = {}
        self._next = 0
        self.begun = 0

    def begin_call(self, method, *args, **kwargs) -> int:
        handle = self._next
        self._next += 1
        self._pending[handle] = (method, args, kwargs)
        self.begun += 1
        return handle

    def finish_call(self, handle):
        method, args, kwargs = self._pending.pop(handle)
        return getattr(self._replica, method)(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._replica, name)


class TestPipelinedScatter:
    def _views(self):
        onto, delta = _sample_ontology()
        cluster = ClusterService(num_shards=4, deltas=[delta])
        pipelined = ShardedStoreView(
            cluster.router,
            [_PipelinedReplica(replica) for replica in cluster.replicas])
        sequential = ShardedStoreView(cluster.router, cluster.replicas)
        return onto, sequential, pipelined

    def test_scatter_merges_byte_identical(self):
        onto, sequential, pipelined = self._views()
        concept = onto.find(NodeType.CONCEPT, "marvel movies")
        for call in (
            lambda v: v.nodes(),
            lambda v: v.nodes(NodeType.ENTITY),
            lambda v: v.count(),
            lambda v: v.find(NodeType.CONCEPT, "mcu films"),
            lambda v: v.nodes_with_token("thor", NodeType.ENTITY),
            lambda v: v.candidates({"iron", "wasp"}, NodeType.ENTITY),
            lambda v: v.edges(),
            lambda v: v.edges(EdgeType.ISA),
            lambda v: v.successors(concept.node_id),
            lambda v: v.predecessors(
                onto.find(NodeType.ENTITY, "thor").node_id),
            lambda v: v.stats(),
        ):
            assert dumps(call(pipelined)) == dumps(call(sequential))

    def test_scatter_actually_pipelines(self):
        _onto, _sequential, pipelined = self._views()
        replicas = pipelined._replicas
        pipelined.nodes()
        # Every shard got a dispatched (not inline) owned_ids call.
        assert all(replica.begun > 0 for replica in replicas)


# ----------------------------------------------------------------------
# remote cluster on the binary wire: byte-identity at 4 shards with a
# mid-stream rebalance (the acceptance gate)
# ----------------------------------------------------------------------
class TestRemoteBinaryWire:
    def _seed_log(self, log_dir):
        producer, delta = _sample_ontology()
        log = DeltaLog(log_dir, segment_max_bytes=512)
        log.append(delta)
        catalog = SnapshotCatalog(log, compact_bytes=1, retain_segments=0,
                                  snapshot_format="columnar")
        catalog.record(OntologyStore.bootstrap(None, [delta]))
        ner = NerTagger()
        for name in ("iron man", "thor", "hulk", "black widow", "wasp"):
            ner.register(name, "WORK")
        return producer, log, catalog, ner

    def test_binary_cluster_byte_identical_with_rebalance(self, tmp_path):
        """4 binary-wire shard workers bootstrapped from a *columnar*
        snapshot serve responses byte-identical to a single store —
        before and after a mid-stream delta plus a ring rebalance."""
        producer, log, catalog, ner = self._seed_log(tmp_path / "log")
        single = OntologyService(producer, ner=ner,
                                 tagger_options=TAGGER_OPTIONS)
        queries = ["best marvel movies", "thor review"]
        request = ("doc-1", tokenize("iron man and wasp team up"),
                   [tokenize("the hulk arrives")])
        with PublisherThread(log, catalog) as publisher:
            with RemoteClusterService(publisher.address, num_shards=4,
                                      ner=ner,
                                      tagger_options=TAGGER_OPTIONS,
                                      wire="binary") as remote:
                assert remote.stats()["wire"] == "binary"
                assert all(replica.wire == "binary"
                           for replica in remote.replicas)
                assert dumps(single.interpret_queries(queries)) == \
                    dumps(remote.interpret_queries(queries))
                assert dumps(single.tag_documents([request])) == \
                    dumps(remote.tag_documents([request]))
                assert dumps(single.stats()["ontology"]) == \
                    dumps(remote.stats()["ontology"])
                view = remote.ontology.store
                assert dumps(view.nodes()) == dumps(producer.store.nodes())
                assert dumps(view.edges()) == dumps(producer.store.edges())
                # Mid-stream: publish a late delta, then flip the ring.
                producer.begin_delta("late")
                ant = producer.add_node(NodeType.ENTITY, "ant man")
                concept = producer.find(NodeType.CONCEPT, "marvel movies")
                producer.add_edge(concept.node_id, ant.node_id,
                                  EdgeType.ISA)
                late = producer.commit_delta()
                publisher.publish([late])
                delta = remote.rebalance(5, publish=publisher.publish)
                single.refresh([late, delta])
                assert remote.num_shards == 5
                # New/seeded/restarted workers re-negotiated binary.
                assert all(replica.wire == "binary"
                           for replica in remote.replicas)
                assert dumps(single.interpret_queries(queries)) == \
                    dumps(remote.interpret_queries(queries))
                assert dumps(single.stats()["ontology"]) == \
                    dumps(remote.stats()["ontology"])
                assert dumps(remote.ontology.store.nodes()) == \
                    dumps(producer.store.nodes())
