"""Tests for repro.cluster: routing, sharded replay, scatter-gather
serving equality, and the multi-process tagging pool."""

import pytest

from repro.cluster import ClusterService, ShardRouter, TaggingWorkerPool
from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.core.serialize import store_to_delta
from repro.core.store import OntologyDelta, OntologyStore
from repro.errors import DeltaGapError, OntologyError
from repro.serving import OntologyService
from repro.text.ner import NerTagger
from repro.text.tokenizer import tokenize

ENTITIES = ("iron man", "captain america", "black panther", "thor",
            "hulk", "black widow", "doctor strange", "ant man")


def _build_producer():
    """A producer ontology recorded as three delta batches, with every
    node/edge type and cross-type edges that will straddle shards."""
    producer = AttentionOntology()
    producer.begin_delta("build")
    category = producer.add_node(NodeType.CATEGORY, "movies")
    concept = producer.add_node(
        NodeType.CONCEPT, "marvel superhero movies",
        payload={"context_titles": [tokenize("best marvel superhero movies")]},
    )
    producer.add_edge(category.node_id, concept.node_id, EdgeType.ISA)
    for name in ENTITIES[:6]:
        entity = producer.add_node(NodeType.ENTITY, name)
        producer.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
    event = producer.add_node(
        NodeType.EVENT, "black panther premiere breaks box office record")
    producer.add_edge(
        event.node_id,
        producer.find(NodeType.ENTITY, "black panther").node_id,
        EdgeType.INVOLVE)
    producer.add_alias(concept.node_id, "mcu films")
    first = producer.commit_delta()

    producer.begin_delta("day2")
    topic = producer.add_node(NodeType.TOPIC, "marvel phase four")
    producer.add_edge(topic.node_id, event.node_id, EdgeType.INVOLVE)
    a = producer.find(NodeType.ENTITY, "iron man")
    b = producer.find(NodeType.ENTITY, "captain america")
    producer.add_edge(a.node_id, b.node_id, EdgeType.CORRELATE)
    producer.update_payload(concept.node_id, {"support": 9})
    second = producer.commit_delta()

    producer.begin_delta("day3")
    for name in ENTITIES[6:]:
        entity = producer.add_node(NodeType.ENTITY, name)
        producer.add_edge(
            producer.find(NodeType.CONCEPT, "marvel superhero movies").node_id,
            entity.node_id, EdgeType.ISA)
    producer.add_node(
        NodeType.EVENT, "doctor strange sequel announced at comic con")
    third = producer.commit_delta()
    return producer, [first, second, third]


@pytest.fixture
def producer_and_deltas():
    return _build_producer()


@pytest.fixture
def ner():
    tagger = NerTagger()
    for name in ENTITIES:
        tagger.register(name, "WORK")
    return tagger


TAGGER_OPTIONS = {"coherence_threshold": 0.01, "lcs_threshold": 0.6}

DOCS = [
    ("d1", tokenize("iron man and captain america reviewed"),
     [tokenize("both iron man and captain america delight fans")]),
    ("d2", tokenize("black panther premiere breaks box office record"),
     [tokenize("a huge premiere for black panther")]),
    ("d3", tokenize("doctor strange sequel announced at comic con"),
     [tokenize("doctor strange returns")]),
    ("d4", tokenize("gardening tips for small balconies"),
     [tokenize("nothing about movies here")]),
]

QUERIES = ["best marvel superhero movies", "iron man review",
           "mcu films ranked", "unrelated gardening query"]


class TestShardRouter:
    def test_assignment_deterministic_across_routers(self, producer_and_deltas):
        _producer, deltas = producer_and_deltas
        first = ShardRouter(4)
        second = ShardRouter(4)
        subs_a = [first.split(d) for d in deltas]
        subs_b = [second.split(d) for d in deltas]
        assert subs_a == subs_b
        assert first.shard_versions == second.shard_versions

    def test_partitioning_spreads_nodes(self, producer_and_deltas):
        _producer, deltas = producer_and_deltas
        router = ShardRouter(4)
        for delta in deltas:
            router.split(delta)
        owners = {router.owner_of(node_id)
                  for node_id in _producer.store._by_id}
        assert len(owners) > 1  # hash partitioning uses several shards

    def test_split_preserves_real_ops_and_version_math(self,
                                                       producer_and_deltas):
        _producer, deltas = producer_and_deltas
        router = ShardRouter(4)
        for delta in deltas:
            subs = router.split(delta)
            flat = [op for sub in subs if sub for op in sub.ops]
            # Node/alias/payload ops appear exactly once, on the owner.
            point_ops = [op for op in flat
                         if op["op"] != "edge" and not op.get("ghost")]
            assert len(point_ops) == sum(
                1 for op in delta.ops if op["op"] != "edge")
            # Edge ops appear once per distinct endpoint-owner shard.
            routed_edges = [op for op in flat if op["op"] == "edge"]
            expected = sum(
                len({router.owner_of(op["source"]),
                     router.owner_of(op["target"])})
                for op in delta.ops if op["op"] == "edge")
            assert len(routed_edges) == expected
            for sub in subs:
                if sub is not None:
                    assert sub.base_version + len(sub.ops) == sub.version
        assert router.version == deltas[-1].version

    def test_gap_in_stream_rejected(self, producer_and_deltas):
        _producer, deltas = producer_and_deltas
        router = ShardRouter(4)
        with pytest.raises(OntologyError):
            router.split(deltas[1])  # skipped deltas[0]

    def test_edge_ops_route_to_both_owner_shards(self, producer_and_deltas):
        _producer, deltas = producer_and_deltas
        router = ShardRouter(4)
        sub_streams = [router.split(d) for d in deltas]
        seen = set()
        for subs in sub_streams:
            for shard, sub in enumerate(subs):
                if sub is None:
                    continue
                for op in sub.ops:
                    if op["op"] == "edge":
                        seen.add((shard, op["source"], op["target"]))
                        assert shard in (router.owner_of(op["source"]),
                                         router.owner_of(op["target"]))
        # At least one edge crossed shards (stored on two shards).
        doubled = {(s, t) for _shard, s, t in seen
                   if sum(1 for sh, a, b in seen
                          if (a, b) == (s, t)) == 2}
        assert doubled


class TestClusterReplay:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    def test_sharded_replay_reproduces_single_store_stats(
            self, producer_and_deltas, num_shards):
        producer, deltas = producer_and_deltas
        cluster = ClusterService(num_shards=num_shards, deltas=deltas)
        assert cluster.stats()["ontology"] == producer.stats()
        assert cluster.version == producer.version

    def test_refresh_skips_applied_batches(self, producer_and_deltas):
        _producer, deltas = producer_and_deltas
        cluster = ClusterService(num_shards=4, deltas=deltas[:2])
        assert cluster.refresh(deltas) == 1  # only the third is new
        assert cluster.refresh(deltas) == 0

    def test_refresh_gap_rejected_before_any_shard_applies(
            self, producer_and_deltas):
        """Mirrors OntologyService.refresh: a gapped stream raises a
        serving-level DeltaGapError naming the missing range, with no
        shard advanced past the contiguous prefix."""
        _producer, deltas = producer_and_deltas
        cluster = ClusterService(num_shards=4, deltas=deltas[:1])
        with pytest.raises(DeltaGapError, match="missing versions"):
            cluster.refresh(deltas[2:])  # deltas[1] is missing
        assert cluster.version == deltas[0].version
        # Re-delivering the full tail catches the cluster up cleanly.
        assert cluster.refresh(deltas[1:]) == len(deltas) - 1

    def test_refresh_rejects_tail_straddling_cluster_version(
            self, producer_and_deltas):
        """Regression: a batch straddling the cluster's stream version
        (base behind, end ahead — e.g. a tail predating the bootstrap
        snapshot) raises DeltaGapError naming the overlap before any
        shard is touched, instead of a raw router error."""
        _producer, deltas = producer_and_deltas
        cluster = ClusterService(num_shards=4, deltas=deltas[:1])
        straddling = OntologyDelta(
            stage="merged", base_version=deltas[0].base_version,
            version=deltas[1].version, ops=deltas[0].ops + deltas[1].ops)
        with pytest.raises(DeltaGapError, match="double-apply"):
            cluster.refresh([straddling])
        assert cluster.version == deltas[0].version
        assert cluster.refresh(deltas[1:]) == len(deltas) - 1

    def test_bootstrap_from_existing_ontology(self, producer_and_deltas):
        producer, _deltas = producer_and_deltas
        cluster = ClusterService(num_shards=4, ontology=producer)
        assert cluster.stats()["ontology"] == producer.stats()

    def test_bootstrap_from_snapshot_plus_tail(self, producer_and_deltas):
        """The cluster-side snapshot bootstrap: fold a compact() dump
        through the router, fast-forward, then refresh with the tail —
        state identical to routing the full stream."""
        producer, deltas = producer_and_deltas
        snapshot = OntologyStore.bootstrap(None, deltas[:2]).compact()
        cluster = ClusterService(num_shards=4, snapshot=snapshot,
                                 deltas=deltas[2:])
        assert cluster.version == producer.version
        assert cluster.stats()["ontology"] == producer.stats()
        full = ClusterService(num_shards=4, deltas=deltas)
        assert cluster.stats()["ontology"] == full.stats()["ontology"]
        # A tail predating the snapshot is rejected as an overlap.
        fresh = ClusterService(num_shards=4, snapshot=snapshot)
        straddling = OntologyDelta(
            stage="merged", base_version=deltas[1].base_version,
            version=deltas[2].version, ops=deltas[1].ops + deltas[2].ops)
        with pytest.raises(DeltaGapError, match="double-apply"):
            fresh.refresh([straddling])
        # Snapshot bootstrap needs a fresh cluster.
        with pytest.raises(OntologyError, match="fresh cluster"):
            cluster.bootstrap(snapshot)

    def test_ontology_and_deltas_mutually_exclusive(self,
                                                    producer_and_deltas):
        producer, deltas = producer_and_deltas
        with pytest.raises(OntologyError):
            ClusterService(num_shards=4, ontology=producer, deltas=deltas)

    def test_view_rejects_direct_mutation(self, producer_and_deltas):
        producer, deltas = producer_and_deltas
        cluster = ClusterService(num_shards=4, deltas=deltas)
        with pytest.raises(OntologyError):
            cluster.ontology.add_node(NodeType.TOPIC, "forbidden")
        with pytest.raises(OntologyError):
            cluster.ontology.apply_delta(
                OntologyDelta(version=1, ops=[{"op": "explode"}]))


class TestScatterGatherReads:
    @pytest.fixture
    def pair(self, producer_and_deltas, ner):
        producer, deltas = producer_and_deltas
        single = OntologyService(producer, ner=ner,
                                 tagger_options=TAGGER_OPTIONS)
        cluster = ClusterService(num_shards=4, ner=ner,
                                 tagger_options=TAGGER_OPTIONS, deltas=deltas)
        return producer, single, cluster

    def test_find_resolves_canonical_and_alias(self, pair):
        producer, _single, cluster = pair
        view = cluster.ontology
        concept = producer.find(NodeType.CONCEPT, "marvel superhero movies")
        assert view.find(NodeType.CONCEPT,
                         "Marvel Superhero Movies").node_id == concept.node_id
        assert view.find(NodeType.CONCEPT, "mcu films").node_id == concept.node_id
        assert view.find(NodeType.CONCEPT, "unknown") is None
        # Canonical resolution serves fresh payloads, never ghost copies.
        assert view.find(NodeType.CONCEPT,
                         "mcu films").payload["support"] == 9

    def test_indexed_reads_match_single_store(self, pair):
        producer, _single, cluster = pair
        store, view = producer.store, cluster.ontology.store
        for token in ("marvel", "panther", "sequel", "absent"):
            for node_type in (NodeType.CONCEPT, NodeType.EVENT):
                assert (
                    [n.node_id for n in view.nodes_with_token(token, node_type)]
                    == [n.node_id
                        for n in store.nodes_with_token(token, node_type)]
                )
        tokens = tokenize("black panther premiere breaks box office record")
        assert ([n.node_id for n in view.candidates(tokens, NodeType.EVENT)]
                == [n.node_id for n in store.candidates(tokens, NodeType.EVENT)])
        assert ([n.node_id
                 for n in view.contained_phrases(tokens, NodeType.ENTITY)]
                == [n.node_id
                    for n in store.contained_phrases(tokens, NodeType.ENTITY)])

    def test_traversals_match_single_store(self, pair):
        producer, single, cluster = pair
        concept = producer.find(NodeType.CONCEPT, "marvel superhero movies")
        category = producer.find(NodeType.CATEGORY, "movies")
        entity = producer.find(NodeType.ENTITY, "thor")
        view = cluster.ontology
        assert ([n.node_id for n in view.successors(concept.node_id,
                                                    EdgeType.ISA)]
                == [n.node_id for n in producer.successors(concept.node_id,
                                                           EdgeType.ISA)])
        assert view.has_path(category.node_id, entity.node_id)
        assert not view.has_path(entity.node_id, category.node_id)
        assert (cluster.neighborhood(concept.node_id, depth=2)
                == single.neighborhood(concept.node_id, depth=2))
        assert (cluster.concepts_of_entity("hulk")
                == single.concepts_of_entity("hulk"))

    def test_nodes_and_counts_exclude_ghosts(self, pair):
        producer, _single, cluster = pair
        view = cluster.ontology
        for node_type in NodeType:
            assert ([n.node_id for n in view.nodes(node_type)]
                    == [n.node_id for n in producer.nodes(node_type)])
        assert len(view) == len(producer)
        ghost_total = sum(r.ghost_count for r in cluster.replicas)
        stored_total = sum(len(r.store) for r in cluster.replicas)
        assert stored_total == len(producer) + ghost_total
        assert ghost_total > 0  # cross-shard edges exist at 4 shards


class TestContestedAliasKeys:
    """A contested alias key (two nodes claiming the same alias phrase)
    must resolve to the single store's setdefault winner — the first
    registration in the global stream, not the earliest-created node."""

    @staticmethod
    def _contested_stream():
        producer = AttentionOntology()
        producer.begin_delta("build")
        early = producer.add_node(NodeType.CONCEPT, "alpha movies")
        late = producer.add_node(NodeType.CONCEPT, "beta movies")
        # The *later-created* node claims the shared alias first.
        producer.add_alias(late.node_id, "shared phrase")
        producer.add_alias(early.node_id, "shared phrase")
        delta = producer.commit_delta()
        return producer, early, late, delta

    def test_cluster_find_matches_single_store_winner(self):
        producer, _early, late, delta = self._contested_stream()
        assert producer.find(NodeType.CONCEPT,
                             "shared phrase").node_id == late.node_id
        for num_shards in (1, 2, 4, 7):
            cluster = ClusterService(num_shards=num_shards, deltas=[delta])
            found = cluster.ontology.find(NodeType.CONCEPT, "shared phrase")
            assert found.node_id == late.node_id, num_shards

    def test_bootstrap_delta_preserves_winner(self):
        producer, _early, late, _delta = self._contested_stream()
        cold = OntologyStore()
        cold.apply_delta(store_to_delta(producer.store))
        assert cold.find(NodeType.CONCEPT,
                         "shared phrase").node_id == late.node_id

    def test_canonical_phrase_beats_alias_claim(self):
        producer = AttentionOntology()
        producer.begin_delta("build")
        named = producer.add_node(NodeType.CONCEPT, "space probes")
        other = producer.add_node(NodeType.CONCEPT, "deep space missions")
        producer.add_alias(other.node_id, "space probes")  # losing claim
        delta = producer.commit_delta()
        assert producer.find(NodeType.CONCEPT,
                             "space probes").node_id == named.node_id
        cluster = ClusterService(num_shards=4, deltas=[delta])
        assert cluster.ontology.find(
            NodeType.CONCEPT, "space probes").node_id == named.node_id


class TestClusterServing:
    def test_tagging_identical_to_single_store(self, producer_and_deltas, ner):
        producer, deltas = producer_and_deltas
        single = OntologyService(producer, ner=ner,
                                 tagger_options=TAGGER_OPTIONS)
        cluster = ClusterService(num_shards=4, ner=ner,
                                 tagger_options=TAGGER_OPTIONS, deltas=deltas)
        assert cluster.tag_documents(DOCS) == single.tag_documents(DOCS)

    def test_queries_identical_to_single_store(self, producer_and_deltas, ner):
        producer, deltas = producer_and_deltas
        single = OntologyService(producer, ner=ner,
                                 tagger_options=TAGGER_OPTIONS)
        cluster = ClusterService(num_shards=4, ner=ner,
                                 tagger_options=TAGGER_OPTIONS, deltas=deltas)
        assert (cluster.interpret_queries(QUERIES)
                == single.interpret_queries(QUERIES))

    def test_incremental_refresh_keeps_results_identical(
            self, producer_and_deltas, ner):
        producer, deltas = producer_and_deltas
        single = OntologyService(AttentionOntology(), ner=ner,
                                 tagger_options=TAGGER_OPTIONS)
        cluster = ClusterService(num_shards=3, ner=ner,
                                 tagger_options=TAGGER_OPTIONS)
        for delta in deltas:  # day-by-day convergence
            single.refresh([delta])
            cluster.refresh([delta])
            assert cluster.tag_documents(DOCS) == single.tag_documents(DOCS)

    def test_bootstrap_delta_equivalent_to_stream(self, producer_and_deltas,
                                                  ner):
        producer, deltas = producer_and_deltas
        from_stream = ClusterService(num_shards=4, ner=ner,
                                     tagger_options=TAGGER_OPTIONS,
                                     deltas=deltas)
        from_dump = ClusterService(num_shards=4, ner=ner,
                                   tagger_options=TAGGER_OPTIONS,
                                   deltas=[store_to_delta(producer.store)])
        assert (from_dump.stats()["ontology"]
                == from_stream.stats()["ontology"])
        assert (from_dump.tag_documents(DOCS)
                == from_stream.tag_documents(DOCS))


class TestTaggingWorkerPool:
    def test_pool_matches_single_process_and_refreshes(
            self, producer_and_deltas, ner):
        producer, deltas = producer_and_deltas
        single = OntologyService(producer, ner=ner,
                                 tagger_options=TAGGER_OPTIONS)
        snapshot = OntologyStore.bootstrap(None, deltas[:2]).compact()
        with TaggingWorkerPool(deltas, ner=ner, snapshot=snapshot,
                               tagger_options=TAGGER_OPTIONS,
                               num_workers=2, timeout=120.0) as pool:
            assert pool.tag_documents(DOCS * 3) == single.tag_documents(
                DOCS * 3)
            # A new delta broadcast reaches every replica.
            producer.begin_delta("day4")
            producer.add_node(NodeType.EVENT,
                              "hulk cameo confirmed in new trailer")
            fourth = producer.commit_delta()
            assert pool.refresh([fourth]) == 1
            single.refresh([fourth])
            fresh_doc = [("n", tokenize("hulk cameo confirmed in new trailer"),
                          [])]
            assert pool.tag_documents(fresh_doc) == single.tag_documents(
                fresh_doc)

    def test_empty_batch_and_close_idempotent(self, producer_and_deltas, ner):
        _producer, deltas = producer_and_deltas
        pool = TaggingWorkerPool(deltas, ner=ner,
                                 tagger_options=TAGGER_OPTIONS,
                                 num_workers=1, timeout=120.0)
        assert pool.tag_documents([]) == []
        pool.close()
        pool.close()
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            pool.tag_documents(DOCS)
