"""Tests for ontology serialization and the concept-correlate extension."""

import json
import random

import pytest

from repro.core.columnar import (
    check_segment,
    decode_store_segment,
    encode_store_segment,
)
from repro.core.linking.concept_concept import (
    concept_cooccurrence_pairs,
    link_concept_correlations,
)
from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.core.serialize import (
    load_ontology,
    load_store_columnar,
    ontology_from_dict,
    ontology_to_dict,
    save_ontology,
    save_store_columnar,
    store_to_dict,
)
from repro.core.store import OntologyStore
from repro.errors import OntologyError, SegmentIntegrityError
from repro.serving.rpc import dumps


@pytest.fixture
def ontology():
    onto = AttentionOntology()
    c1 = onto.add_node(NodeType.CONCEPT, "economy cars",
                       payload={"context_titles": [["economy", "cars", "ranked"]]})
    c2 = onto.add_node(NodeType.CONCEPT, "fuel efficient cars")
    c3 = onto.add_node(NodeType.CONCEPT, "detective fiction")
    e1 = onto.add_node(NodeType.ENTITY, "honda civic")
    e2 = onto.add_node(NodeType.ENTITY, "toyota corolla")
    e3 = onto.add_node(NodeType.ENTITY, "sherlock")
    onto.add_edge(c1.node_id, e1.node_id, EdgeType.ISA)
    onto.add_edge(c1.node_id, e2.node_id, EdgeType.ISA)
    onto.add_edge(c2.node_id, e1.node_id, EdgeType.ISA)
    onto.add_edge(c2.node_id, e2.node_id, EdgeType.ISA)
    onto.add_edge(c3.node_id, e3.node_id, EdgeType.ISA)
    onto.add_edge(e1.node_id, e2.node_id, EdgeType.CORRELATE, weight=0.9)
    onto.add_alias(c1.node_id, "cheap cars")
    return onto


class TestSerialization:
    def test_round_trip_preserves_stats(self, ontology):
        rebuilt = ontology_from_dict(ontology_to_dict(ontology))
        assert rebuilt.stats() == ontology.stats()

    def test_round_trip_preserves_aliases(self, ontology):
        rebuilt = ontology_from_dict(ontology_to_dict(ontology))
        node = rebuilt.find(NodeType.CONCEPT, "cheap cars")
        assert node is not None
        assert node.phrase == "economy cars"

    def test_round_trip_preserves_payload(self, ontology):
        rebuilt = ontology_from_dict(ontology_to_dict(ontology))
        node = rebuilt.find(NodeType.CONCEPT, "economy cars")
        assert node.payload["context_titles"] == [["economy", "cars", "ranked"]]

    def test_round_trip_preserves_edge_weights(self, ontology):
        rebuilt = ontology_from_dict(ontology_to_dict(ontology))
        edges = rebuilt.edges(EdgeType.CORRELATE)
        assert len(edges) == 1
        assert edges[0].weight == 0.9

    def test_file_round_trip(self, ontology, tmp_path):
        path = tmp_path / "onto.json"
        save_ontology(ontology, str(path))
        rebuilt = load_ontology(str(path))
        assert rebuilt.stats() == ontology.stats()

    def test_serialized_is_valid_json(self, ontology, tmp_path):
        path = tmp_path / "onto.json"
        save_ontology(ontology, str(path))
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert len(data["nodes"]) == len(ontology)

    def test_unknown_version_rejected(self):
        with pytest.raises(OntologyError):
            ontology_from_dict({"version": 99, "nodes": [], "edges": []})

    def test_dangling_edge_rejected(self):
        with pytest.raises(OntologyError):
            ontology_from_dict({
                "version": 1,
                "nodes": [],
                "edges": [{"source": "x", "target": "y", "type": "isA"}],
            })

    def test_tuple_payload_becomes_list(self):
        onto = AttentionOntology()
        onto.add_node(NodeType.TOPIC, "t", payload={"pattern": ("X", "wins")})
        rebuilt = ontology_from_dict(ontology_to_dict(onto))
        node = rebuilt.find(NodeType.TOPIC, "t")
        assert node.payload["pattern"] == ["X", "wins"]


def _random_store(seed: int) -> OntologyStore:
    """A seeded store stressing the columnar encoder: unicode phrases,
    contested aliases (several nodes claiming the same text, several
    aliases equal to other nodes' phrases — maximal interning overlap),
    int-vs-float payload cells and mixed edge weights."""
    rng = random.Random(seed)
    onto = AttentionOntology()
    phrases = ["café crème", "東京 ニュース", "naïve bayes", "zebra fish",
               "fußball heute", "Ω résumé", "plain phrase", "🚗 cars"]
    payload_cells = [1, 1.0, -7, 0.25, True, False, None, "käse",
                     [1, 2.5, "三"], {"nested": {"k": [None, "v"]}}]
    nodes = []
    for index in range(rng.randint(0, 14)):
        node_type = rng.choice(list(NodeType))
        phrase = f"{rng.choice(phrases)} {index}"
        payload = {f"k{j}": rng.choice(payload_cells)
                   for j in range(rng.randint(0, 3))}
        nodes.append(onto.add_node(node_type, phrase, payload=payload))
    for node in nodes:
        if rng.random() < 0.5:
            # Contested alias text plus aliases colliding with phrases
            # already interned — the pool must dedupe, not duplicate.
            alias = rng.choice(["shared alias", "çommon", nodes[0].phrase])
            onto.add_alias(node.node_id, alias)
    for _ in range(rng.randint(0, 12)):
        if len(nodes) < 2:
            break
        source, target = rng.sample(nodes, 2)
        edge_type = rng.choice(list(EdgeType))
        if not onto.store.has_edge(source.node_id, target.node_id,
                                   edge_type):
            try:
                onto.add_edge(source.node_id, target.node_id, edge_type,
                              weight=rng.choice([1, 1.0, 0.5, 3]))
            except OntologyError:
                pass  # random pick closed an isA cycle; skip it
    return onto.store


class TestColumnarSegments:
    def test_random_stores_round_trip_byte_identical(self):
        """Property: for seeded random stores, snapshot -> columnar
        segment -> decode reproduces the snapshot dict *byte-identically*
        under the canonical rpc.dumps encoding — including the int/float
        distinction (1 vs 1.0) JSON text preserves."""
        for seed in range(12):
            snapshot = store_to_dict(_random_store(seed))
            segment = encode_store_segment(snapshot)
            assert dumps(decode_store_segment(segment)) == \
                dumps(snapshot), f"seed {seed} round trip diverged"

    def test_empty_store_round_trips(self):
        snapshot = store_to_dict(OntologyStore())
        decoded = decode_store_segment(encode_store_segment(snapshot))
        assert dumps(decoded) == dumps(snapshot)

    def test_unicode_phrases_and_alias_collisions_survive(self):
        onto = AttentionOntology()
        a = onto.add_node(NodeType.CONCEPT, "café crème")
        b = onto.add_node(NodeType.ENTITY, "café crème")  # same text
        onto.add_alias(a.node_id, "kaffee sahne")
        onto.add_alias(b.node_id, "kaffee sahne")  # contested claim
        onto.add_alias(b.node_id, "café crème extra")
        snapshot = store_to_dict(onto.store)
        decoded = decode_store_segment(encode_store_segment(snapshot))
        assert dumps(decoded) == dumps(snapshot)

    def test_file_round_trip_and_size(self, tmp_path):
        store = _random_store(3)
        path = tmp_path / "store.rcs"
        size = save_store_columnar(store, str(path))
        assert size == path.stat().st_size > 0
        rebuilt = load_store_columnar(str(path))
        assert dumps(store_to_dict(rebuilt)) == dumps(store_to_dict(store))

    def test_footer_counts_match_tables(self):
        store = _random_store(5)
        segment = encode_store_segment(store_to_dict(store))
        n_nodes, n_edges, _n_strings = check_segment(segment)
        assert n_nodes == len(store)
        assert n_edges == len(store.edges())

    def test_truncated_segment_refused_by_name(self):
        segment = encode_store_segment(store_to_dict(_random_store(7)))
        for cut in (0, 10, len(segment) // 2, len(segment) - 1):
            with pytest.raises(SegmentIntegrityError):
                decode_store_segment(segment[:cut])

    def test_bit_flip_refused_by_checksum(self):
        segment = encode_store_segment(store_to_dict(_random_store(9)))
        corrupt = bytearray(segment)
        corrupt[len(segment) // 3] ^= 0xFF
        with pytest.raises(SegmentIntegrityError,
                           match="checksum mismatch"):
            decode_store_segment(bytes(corrupt))


class TestConceptCorrelate:
    def test_cooccurrence_counts_shared_members(self, ontology):
        pairs = concept_cooccurrence_pairs(ontology)
        assert pairs[("economy cars", "fuel efficient cars")] == 2
        assert ("economy cars", "detective fiction") not in pairs

    def test_link_creates_correlate_edges(self, ontology):
        created = link_concept_correlations(ontology, epochs=60, seed=0)
        assert created >= 1
        a = ontology.find(NodeType.CONCEPT, "economy cars")
        b = ontology.find(NodeType.CONCEPT, "fuel efficient cars")
        assert ontology.has_edge(a.node_id, b.node_id, EdgeType.CORRELATE)

    def test_no_concepts_no_edges(self):
        onto = AttentionOntology()
        assert link_concept_correlations(onto) == 0

    def test_unrelated_concepts_not_linked(self, ontology):
        link_concept_correlations(ontology, epochs=60, seed=0)
        a = ontology.find(NodeType.CONCEPT, "economy cars")
        c = ontology.find(NodeType.CONCEPT, "detective fiction")
        assert not ontology.has_edge(a.node_id, c.node_id, EdgeType.CORRELATE)
