"""Tests for ontology serialization and the concept-correlate extension."""

import json

import pytest

from repro.core.linking.concept_concept import (
    concept_cooccurrence_pairs,
    link_concept_correlations,
)
from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.core.serialize import (
    load_ontology,
    ontology_from_dict,
    ontology_to_dict,
    save_ontology,
)
from repro.errors import OntologyError


@pytest.fixture
def ontology():
    onto = AttentionOntology()
    c1 = onto.add_node(NodeType.CONCEPT, "economy cars",
                       payload={"context_titles": [["economy", "cars", "ranked"]]})
    c2 = onto.add_node(NodeType.CONCEPT, "fuel efficient cars")
    c3 = onto.add_node(NodeType.CONCEPT, "detective fiction")
    e1 = onto.add_node(NodeType.ENTITY, "honda civic")
    e2 = onto.add_node(NodeType.ENTITY, "toyota corolla")
    e3 = onto.add_node(NodeType.ENTITY, "sherlock")
    onto.add_edge(c1.node_id, e1.node_id, EdgeType.ISA)
    onto.add_edge(c1.node_id, e2.node_id, EdgeType.ISA)
    onto.add_edge(c2.node_id, e1.node_id, EdgeType.ISA)
    onto.add_edge(c2.node_id, e2.node_id, EdgeType.ISA)
    onto.add_edge(c3.node_id, e3.node_id, EdgeType.ISA)
    onto.add_edge(e1.node_id, e2.node_id, EdgeType.CORRELATE, weight=0.9)
    onto.add_alias(c1.node_id, "cheap cars")
    return onto


class TestSerialization:
    def test_round_trip_preserves_stats(self, ontology):
        rebuilt = ontology_from_dict(ontology_to_dict(ontology))
        assert rebuilt.stats() == ontology.stats()

    def test_round_trip_preserves_aliases(self, ontology):
        rebuilt = ontology_from_dict(ontology_to_dict(ontology))
        node = rebuilt.find(NodeType.CONCEPT, "cheap cars")
        assert node is not None
        assert node.phrase == "economy cars"

    def test_round_trip_preserves_payload(self, ontology):
        rebuilt = ontology_from_dict(ontology_to_dict(ontology))
        node = rebuilt.find(NodeType.CONCEPT, "economy cars")
        assert node.payload["context_titles"] == [["economy", "cars", "ranked"]]

    def test_round_trip_preserves_edge_weights(self, ontology):
        rebuilt = ontology_from_dict(ontology_to_dict(ontology))
        edges = rebuilt.edges(EdgeType.CORRELATE)
        assert len(edges) == 1
        assert edges[0].weight == 0.9

    def test_file_round_trip(self, ontology, tmp_path):
        path = tmp_path / "onto.json"
        save_ontology(ontology, str(path))
        rebuilt = load_ontology(str(path))
        assert rebuilt.stats() == ontology.stats()

    def test_serialized_is_valid_json(self, ontology, tmp_path):
        path = tmp_path / "onto.json"
        save_ontology(ontology, str(path))
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert len(data["nodes"]) == len(ontology)

    def test_unknown_version_rejected(self):
        with pytest.raises(OntologyError):
            ontology_from_dict({"version": 99, "nodes": [], "edges": []})

    def test_dangling_edge_rejected(self):
        with pytest.raises(OntologyError):
            ontology_from_dict({
                "version": 1,
                "nodes": [],
                "edges": [{"source": "x", "target": "y", "type": "isA"}],
            })

    def test_tuple_payload_becomes_list(self):
        onto = AttentionOntology()
        onto.add_node(NodeType.TOPIC, "t", payload={"pattern": ("X", "wins")})
        rebuilt = ontology_from_dict(ontology_to_dict(onto))
        node = rebuilt.find(NodeType.TOPIC, "t")
        assert node.payload["pattern"] == ["X", "wins"]


class TestConceptCorrelate:
    def test_cooccurrence_counts_shared_members(self, ontology):
        pairs = concept_cooccurrence_pairs(ontology)
        assert pairs[("economy cars", "fuel efficient cars")] == 2
        assert ("economy cars", "detective fiction") not in pairs

    def test_link_creates_correlate_edges(self, ontology):
        created = link_concept_correlations(ontology, epochs=60, seed=0)
        assert created >= 1
        a = ontology.find(NodeType.CONCEPT, "economy cars")
        b = ontology.find(NodeType.CONCEPT, "fuel efficient cars")
        assert ontology.has_edge(a.node_id, b.node_id, EdgeType.CORRELATE)

    def test_no_concepts_no_edges(self):
        onto = AttentionOntology()
        assert link_concept_correlations(onto) == 0

    def test_unrelated_concepts_not_linked(self, ontology):
        link_concept_correlations(ontology, epochs=60, seed=0)
        a = ontology.find(NodeType.CONCEPT, "economy cars")
        c = ontology.find(NodeType.CONCEPT, "detective fiction")
        assert not ontology.has_edge(a.node_id, c.node_id, EdgeType.CORRELATE)
