"""Tests for repro.text.embeddings."""

import numpy as np
import pytest

from repro.text.embeddings import WordEmbeddings


@pytest.fixture(scope="module")
def trained():
    corpus = [
        ["film", "review", "great", "film"],
        ["movie", "review", "great", "movie"],
        ["film", "director", "movie", "director"],
        ["car", "engine", "fast", "car"],
        ["car", "mpg", "engine"],
    ] * 4
    return WordEmbeddings(dim=8, window=2).train(corpus)


class TestTraining:
    def test_vocabulary_learned(self, trained):
        assert "film" in trained
        assert "car" in trained

    def test_vectors_unit_norm(self, trained):
        assert np.linalg.norm(trained.vector("film")) == pytest.approx(1.0, abs=1e-6)

    def test_related_words_closer_than_unrelated(self, trained):
        related = trained.similarity("film", "movie")
        unrelated = trained.similarity("film", "mpg")
        assert related > unrelated

    def test_min_count_filters(self):
        emb = WordEmbeddings(dim=4).train([["a", "b"], ["a", "c"]], min_count=2)
        assert "a" in emb
        assert "b" not in emb

    def test_empty_corpus_ok(self):
        emb = WordEmbeddings(dim=4).train([])
        assert len(emb) == 0


class TestOovFallback:
    def test_oov_vector_deterministic(self):
        emb = WordEmbeddings(dim=16)
        v1 = emb.vector("neverseen")
        v2 = emb.vector("neverseen")
        assert np.allclose(v1, v2)

    def test_oov_vector_unit_norm(self):
        emb = WordEmbeddings(dim=16)
        assert np.linalg.norm(emb.vector("xyzzy")) == pytest.approx(1.0, abs=1e-6)

    def test_different_words_different_vectors(self):
        emb = WordEmbeddings(dim=16)
        assert not np.allclose(emb.vector("alpha"), emb.vector("beta"))


class TestPhraseEncoding:
    def test_phrase_encoding_unit_norm(self, trained):
        v = trained.encode_phrase(["film", "review"])
        assert np.linalg.norm(v) == pytest.approx(1.0, abs=1e-6)

    def test_empty_phrase_zero_vector(self, trained):
        assert np.allclose(trained.encode_phrase([]), 0.0)

    def test_similarity_in_range(self, trained):
        s = trained.similarity("film", "car")
        assert -1.0 - 1e-9 <= s <= 1.0 + 1e-9


def test_invalid_dim_raises():
    with pytest.raises(ValueError):
        WordEmbeddings(dim=1)
