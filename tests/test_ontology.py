"""Tests for repro.core.ontology."""

import pytest

from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.errors import OntologyError


@pytest.fixture
def ontology():
    o = AttentionOntology()
    concept = o.add_node(NodeType.CONCEPT, "fuel efficient cars")
    entity = o.add_node(NodeType.ENTITY, "honda civic")
    category = o.add_node(NodeType.CATEGORY, "cars")
    o.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
    o.add_edge(category.node_id, concept.node_id, EdgeType.ISA)
    return o


class TestNodes:
    def test_add_node_idempotent(self, ontology):
        a = ontology.add_node(NodeType.CONCEPT, "fuel efficient cars")
        b = ontology.add_node(NodeType.CONCEPT, "Fuel Efficient Cars")
        assert a.node_id == b.node_id  # case-insensitive phrase key

    def test_same_phrase_different_type_distinct(self, ontology):
        e = ontology.add_node(NodeType.ENTITY, "fuel efficient cars")
        c = ontology.find(NodeType.CONCEPT, "fuel efficient cars")
        assert e.node_id != c.node_id

    def test_payload_merged(self, ontology):
        ontology.add_node(NodeType.CONCEPT, "fuel efficient cars", payload={"x": 1})
        node = ontology.find(NodeType.CONCEPT, "fuel efficient cars")
        assert node.payload["x"] == 1

    def test_find_missing(self, ontology):
        assert ontology.find(NodeType.TOPIC, "nope") is None

    def test_unknown_node_raises(self, ontology):
        with pytest.raises(OntologyError):
            ontology.node("missing")

    def test_alias_lookup(self, ontology):
        node = ontology.find(NodeType.CONCEPT, "fuel efficient cars")
        ontology.add_alias(node.node_id, "economical cars")
        assert ontology.find(NodeType.CONCEPT, "economical cars").node_id == node.node_id

    def test_nodes_filter_by_type(self, ontology):
        assert len(ontology.nodes(NodeType.ENTITY)) == 1
        assert len(ontology.nodes()) == 3

    def test_tokens_property(self, ontology):
        node = ontology.find(NodeType.CONCEPT, "fuel efficient cars")
        assert node.tokens == ["fuel", "efficient", "cars"]


class TestEdges:
    def test_isa_cycle_rejected(self, ontology):
        concept = ontology.find(NodeType.CONCEPT, "fuel efficient cars")
        category = ontology.find(NodeType.CATEGORY, "cars")
        with pytest.raises(OntologyError):
            ontology.add_edge(concept.node_id, category.node_id, EdgeType.ISA)

    def test_self_loop_rejected(self, ontology):
        node = ontology.find(NodeType.ENTITY, "honda civic")
        with pytest.raises(OntologyError):
            ontology.add_edge(node.node_id, node.node_id, EdgeType.CORRELATE)

    def test_edge_requires_existing_nodes(self, ontology):
        with pytest.raises(OntologyError):
            ontology.add_edge("ghost", "honda civic", EdgeType.ISA)

    def test_correlate_symmetric(self, ontology):
        a = ontology.add_node(NodeType.ENTITY, "toyota corolla")
        b = ontology.find(NodeType.ENTITY, "honda civic")
        ontology.add_edge(a.node_id, b.node_id, EdgeType.CORRELATE)
        assert ontology.has_edge(b.node_id, a.node_id, EdgeType.CORRELATE)

    def test_correlate_counted_once(self, ontology):
        a = ontology.add_node(NodeType.ENTITY, "toyota corolla")
        b = ontology.find(NodeType.ENTITY, "honda civic")
        ontology.add_edge(a.node_id, b.node_id, EdgeType.CORRELATE)
        assert len(ontology.edges(EdgeType.CORRELATE)) == 1

    def test_parents_and_instances(self, ontology):
        concept = ontology.find(NodeType.CONCEPT, "fuel efficient cars")
        entity = ontology.find(NodeType.ENTITY, "honda civic")
        assert [p.phrase for p in ontology.parents_of(entity.node_id)] == [
            "fuel efficient cars"
        ]
        assert [i.phrase for i in ontology.instances_of(concept.node_id)] == [
            "honda civic"
        ]

    def test_concepts_of_entity(self, ontology):
        out = ontology.concepts_of_entity("honda civic")
        assert [c.phrase for c in out] == ["fuel efficient cars"]

    def test_entities_of_concept(self, ontology):
        out = ontology.entities_of_concept("fuel efficient cars")
        assert [e.phrase for e in out] == ["honda civic"]

    def test_deep_isa_chain_cycle_detection(self, ontology):
        # cars -> concept -> entity; entity -> cars would close a 3-cycle.
        entity = ontology.find(NodeType.ENTITY, "honda civic")
        category = ontology.find(NodeType.CATEGORY, "cars")
        with pytest.raises(OntologyError):
            ontology.add_edge(entity.node_id, category.node_id, EdgeType.ISA)


class TestStats:
    def test_stats_counts(self, ontology):
        stats = ontology.stats()
        assert stats["concept"] == 1
        assert stats["entity"] == 1
        assert stats["category"] == 1
        assert stats["isA"] == 2

    def test_len(self, ontology):
        assert len(ontology) == 3
