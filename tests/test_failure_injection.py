"""Failure-injection and degenerate-input tests.

Every stage of the pipeline must degrade gracefully — return empty results
or raise the library's typed exceptions — when fed pathological inputs:
empty worlds, all-stopword queries, singleton graphs, adversarial payloads.
"""

import numpy as np
import pytest

from repro.config import GiantConfig, MiningConfig
from repro.core.features import NodeFeatureExtractor
from repro.core.gctsp import GCTSPNet, prepare_example
from repro.core.mining import AttentionMiner
from repro.core.phrase import AttentionPhrase, PhraseNormalizer
from repro.eval.metrics import evaluate_phrases
from repro.graph.click_graph import ClickGraph
from repro.graph.qtig import build_qtig
from repro.graph.random_walk import RandomWalkClusterer
from repro.tsp import solve_path_atsp


class TestDegenerateClickGraphs:
    def test_empty_graph_clusters_nothing(self):
        clusterer = RandomWalkClusterer(ClickGraph())
        assert clusterer.cluster_all() == []

    def test_unknown_seed_query_yields_singleton(self):
        graph = ClickGraph()
        graph.add_click("q", "d", 1, title="t")
        cluster = RandomWalkClusterer(graph).cluster("never seen query")
        assert cluster.queries == ["never seen query"]
        assert cluster.doc_ids == []

    def test_miner_on_empty_graph(self):
        miner = AttentionMiner(ClickGraph())
        assert miner.mine([]) == []

    def test_miner_cluster_without_titles(self):
        graph = ClickGraph()
        graph.add_click("some plain query", "d1", 1)  # no title recorded
        miner = AttentionMiner(graph)
        cluster = miner.cluster("some plain query")
        assert miner.mine_cluster(cluster) is None


class TestDegenerateText:
    def test_all_stopword_query_cluster(self):
        graph = ClickGraph()
        graph.add_click("the of and", "d1", 2, title="what is this even")
        clusterer = RandomWalkClusterer(graph, MiningConfig(visit_threshold=0.01))
        cluster = clusterer.cluster("the of and")
        # Seed always kept; no content words means no expansion criteria.
        assert cluster.seed_query in cluster.queries

    def test_qtig_with_single_token_texts(self):
        graph = build_qtig([["a"]], [["a"]])
        assert graph.num_nodes == 3  # sos, eos, "a"
        mats, _names = graph.adjacency_matrices()
        assert all(np.isfinite(m).all() for m in mats)

    def test_normalizer_whitespace_phrase(self):
        norm = PhraseNormalizer()
        phrase = norm.add(AttentionPhrase([], "concept"))
        assert phrase.tokens == []
        assert len(norm) == 0


class TestModelRobustness:
    def test_gctsp_predicts_on_unseen_relation_pattern(self, extractor, parser,
                                                       tiny_gctsp_config):
        # A graph whose texts produce dependency labels never seen in
        # training must still classify (unknown labels map to index 0).
        model = GCTSPNet(tiny_gctsp_config)
        example = prepare_example([["cars", "win", "!"]], [["cars", "!"]],
                                  extractor, parser)
        labels = model.predict_labels(example)
        assert labels.shape == (example.graph.num_nodes,)

    def test_gctsp_no_positive_nodes_empty_phrase(self, extractor, parser,
                                                  tiny_gctsp_config):
        model = GCTSPNet(tiny_gctsp_config)
        example = prepare_example([["the", "of"]], [["and", "the"]],
                                  extractor, parser)
        # Whatever the untrained model predicts, extract_phrase must not
        # crash and must return a list.
        assert isinstance(model.extract_phrase(example), list)

    def test_atsp_with_infinite_penalties(self):
        dist = np.full((4, 4), 1e9)
        np.fill_diagonal(dist, 0.0)
        path = solve_path_atsp(dist, 0, 3)
        assert sorted(path) == [0, 1, 2, 3]

    def test_atsp_with_zero_matrix(self):
        path = solve_path_atsp(np.zeros((5, 5)), 0, 4)
        assert sorted(path) == list(range(5))


class TestMetricsRobustness:
    def test_all_empty_predictions(self):
        scores = evaluate_phrases([[], [], []], [["a"], ["b"], ["c"]])
        assert scores.coverage == 0.0
        assert scores.em == 0.0

    def test_unicode_tokens(self):
        scores = evaluate_phrases([["宫崎骏", "电影"]], [["宫崎骏", "电影"]])
        assert scores.em == 1.0


class TestConfigInjection:
    def test_invalid_config_rejected_by_miner(self):
        config = GiantConfig()
        config.mining.visit_threshold = 2.0  # corrupted after construction
        with pytest.raises(Exception):
            AttentionMiner(ClickGraph(), config=config)

    def test_negative_click_count_rejected(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            ClickGraph().add_click("q", "d", -5)
