"""Tests for repro.replication: the segmented delta log (durability and
crash recovery), snapshot catalog retention, publisher/follower log
shipping, and the cross-process remote shard cluster's byte-identity.

Durability tests honour ``REPRO_REPLICATION_ARTIFACTS``: when set, log
and catalog fixture directories are created under it (instead of pytest
tmp dirs) so CI can upload them as artifacts on failure.
"""

import os
import pathlib

import pytest

from repro.cluster import ClusterService, RemoteClusterService
from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.core.store import OntologyDelta, OntologyStore
from repro.errors import DeltaGapError, OntologyError
from repro.replication import (
    DeltaLog,
    LocalLogClient,
    LogFollower,
    PublisherThread,
    SnapshotCatalog,
    SyncLogClient,
)
from repro.serving import OntologyService
from repro.serving.rpc import dumps
from repro.text.ner import NerTagger
from repro.text.tokenizer import tokenize

ENTITIES = ("iron man", "captain america", "black panther", "thor",
            "hulk", "black widow", "doctor strange", "ant man")

TAGGER_OPTIONS = {"coherence_threshold": 0.01, "lcs_threshold": 0.6}

DOCS = [
    ("d1", tokenize("iron man and captain america reviewed"),
     [tokenize("both iron man and captain america delight fans")]),
    ("d2", tokenize("black panther premiere breaks box office record"),
     [tokenize("a huge premiere for black panther")]),
    ("d3", tokenize("doctor strange sequel announced at comic con"),
     [tokenize("doctor strange returns")]),
]

QUERIES = ["best marvel superhero movies", "mcu films ranked",
           "iron man review"]


def _build_producer():
    """Three recorded delta batches over every node/edge type."""
    producer = AttentionOntology()
    producer.begin_delta("build")
    category = producer.add_node(NodeType.CATEGORY, "movies")
    concept = producer.add_node(
        NodeType.CONCEPT, "marvel superhero movies",
        payload={"context_titles": [tokenize("best marvel superhero movies")]},
    )
    producer.add_edge(category.node_id, concept.node_id, EdgeType.ISA)
    for name in ENTITIES[:6]:
        entity = producer.add_node(NodeType.ENTITY, name)
        producer.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
    event = producer.add_node(
        NodeType.EVENT, "black panther premiere breaks box office record")
    producer.add_edge(
        event.node_id,
        producer.find(NodeType.ENTITY, "black panther").node_id,
        EdgeType.INVOLVE)
    producer.add_alias(concept.node_id, "mcu films")
    first = producer.commit_delta()

    producer.begin_delta("day2")
    topic = producer.add_node(NodeType.TOPIC, "marvel phase four")
    producer.add_edge(topic.node_id, event.node_id, EdgeType.INVOLVE)
    producer.update_payload(concept.node_id, {"support": 9})
    second = producer.commit_delta()

    producer.begin_delta("day3")
    for name in ENTITIES[6:]:
        entity = producer.add_node(NodeType.ENTITY, name)
        producer.add_edge(
            producer.find(NodeType.CONCEPT, "marvel superhero movies").node_id,
            entity.node_id, EdgeType.ISA)
    producer.add_node(
        NodeType.EVENT, "doctor strange sequel announced at comic con")
    third = producer.commit_delta()
    return producer, [first, second, third]


@pytest.fixture
def producer_and_deltas():
    return _build_producer()


@pytest.fixture
def ner():
    tagger = NerTagger()
    for name in ENTITIES:
        tagger.register(name, "WORK")
    return tagger


@pytest.fixture
def log_dir(tmp_path, request):
    """Log directory — under REPRO_REPLICATION_ARTIFACTS when set, so a
    failing CI run uploads the on-disk state that broke."""
    root = os.environ.get("REPRO_REPLICATION_ARTIFACTS")
    if root:
        path = pathlib.Path(root) / request.node.name.replace("/", "_")
        path.mkdir(parents=True, exist_ok=True)
        return path
    return tmp_path / "log"


# ----------------------------------------------------------------------
# DeltaLog
# ----------------------------------------------------------------------
class TestDeltaLog:
    def test_append_read_roundtrip(self, producer_and_deltas, log_dir):
        _producer, deltas = producer_and_deltas
        with DeltaLog(log_dir) as log:
            assert log.extend(deltas) == len(deltas)
            assert log.first_version == 0
            assert log.last_version == deltas[-1].version
            assert len(log) == len(deltas)
            out = log.read(0)
        assert [d.version for d in out] == [d.version for d in deltas]
        assert [d.ops for d in out] == [d.ops for d in deltas]

    def test_read_since_and_max_count(self, producer_and_deltas, log_dir):
        _producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir)
        log.extend(deltas)
        tail = log.read(deltas[0].version)
        assert [d.version for d in tail] == [d.version for d in deltas[1:]]
        assert len(log.read(0, max_count=2)) == 2
        assert log.read(deltas[-1].version) == []

    def test_duplicate_append_skipped(self, producer_and_deltas, log_dir):
        _producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir)
        log.extend(deltas)
        assert log.append(deltas[1]) is False  # at-least-once producer
        assert len(log) == len(deltas)

    def test_gap_and_overlap_rejected(self, producer_and_deltas, log_dir):
        _producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir)
        log.append(deltas[0])
        with pytest.raises(DeltaGapError, match="missing versions"):
            log.append(deltas[2])  # skipped deltas[1]
        straddling = OntologyDelta(
            stage="bad", base_version=deltas[0].base_version,
            version=deltas[1].version,
            ops=deltas[0].ops + deltas[1].ops)
        with pytest.raises(DeltaGapError, match="double-apply"):
            log.append(straddling)
        inconsistent = OntologyDelta(stage="bad",
                                     base_version=deltas[0].version,
                                     version=deltas[0].version + 5,
                                     ops=[{"op": "noop"}])
        with pytest.raises(OntologyError, match="internally inconsistent"):
            log.append(inconsistent)

    def test_segment_roll_and_reopen(self, producer_and_deltas, log_dir):
        _producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir, segment_max_bytes=256)
        log.extend(deltas)
        assert len(log.segments()) > 1  # small bound forces rolls
        log.close()
        reopened = DeltaLog(log_dir, segment_max_bytes=256)
        assert reopened.last_version == deltas[-1].version
        assert [d.version for d in reopened.read(0)] == \
            [d.version for d in deltas]
        # Appends continue the stream across a reopen.
        producer = OntologyStore.bootstrap(None, deltas)
        producer.begin_delta("day4")
        producer.add_node(NodeType.EVENT, "hulk cameo confirmed")
        fourth = producer.commit_delta()
        assert reopened.append(fourth) is True
        assert reopened.last_version == fourth.version

    def test_divergent_stream_rejected_not_skipped(self,
                                                   producer_and_deltas,
                                                   log_dir):
        """Regression (review finding): appending a *different* stream
        whose version range the log already retains must fail loudly —
        silently skipping it as a duplicate would lose the new build's
        deltas while the log pretends to hold them (and a later
        snapshot would poison the directory for good)."""
        _producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir)
        log.extend(deltas)
        other = AttentionOntology()
        other.begin_delta("rebuild")
        for index in range(len(deltas[0].ops)):
            other.add_node(NodeType.CONCEPT, f"different concept {index}")
        divergent = other.commit_delta()
        assert divergent.version <= log.last_version  # same range...
        with pytest.raises(OntologyError, match="different delta stream"):
            log.append(divergent)  # ...different content
        # A true at-least-once duplicate still skips silently.
        assert log.append(deltas[0]) is False

    def test_readonly_open_never_repairs(self, producer_and_deltas,
                                         log_dir):
        """Regression (review finding): a read-only open — the serve
        path next to a live builder — must not truncate an in-flight
        tail record or rewrite the manifest; it reads the committed
        prefix and leaves the directory byte-identical."""
        _producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir)
        log.extend(deltas[:2])
        log.close()
        from repro.core.serialize import delta_to_json_line

        segment = log.path / log.segments()[-1].name
        line = delta_to_json_line(deltas[2]) + "\n"
        with open(segment, "ab") as handle:  # writer's in-flight append
            handle.write(line.encode("utf-8")[: len(line) // 2])

        before = {p.name: p.read_bytes() for p in log.path.iterdir()
                  if p.is_file()}
        reader = DeltaLog(log_dir, readonly=True)
        assert reader.last_version == deltas[1].version
        assert [d.version for d in reader.read(0)] == \
            [d.version for d in deltas[:2]]
        with pytest.raises(OntologyError, match="read-only"):
            reader.append(deltas[2])
        after = {p.name: p.read_bytes() for p in log.path.iterdir()
                 if p.is_file()}
        assert after == before  # nothing repaired, nothing rewritten
        # The writer's handle can still complete the record afterwards.
        with open(segment, "ab") as handle:
            handle.write(line.encode("utf-8")[len(line) // 2:])
        assert [d.version for d in DeltaLog(log_dir).read(0)] == \
            [d.version for d in deltas]

    def test_fsync_mode_appends(self, producer_and_deltas, log_dir):
        _producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir, fsync=True)
        assert log.extend(deltas) == len(deltas)
        assert [d.version for d in log.read(0)] == \
            [d.version for d in deltas]


# ----------------------------------------------------------------------
# crash-window durability (satellite: torn-tail recovery)
# ----------------------------------------------------------------------
class TestCrashDurability:
    @staticmethod
    def _active_segment(log: DeltaLog) -> pathlib.Path:
        return log.path / log.segments()[-1].name

    def test_torn_tail_dropped_prefix_preserved(self, producer_and_deltas,
                                                log_dir):
        """A writer killed mid-append leaves a truncated last line; the
        reopened log drops the torn record, keeps the contiguous prefix,
        and replays to the exact same stats as a clean stream."""
        _producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir)
        log.extend(deltas[:2])
        log.close()
        # Simulate the crash: the third delta's record is half-written.
        from repro.core.serialize import delta_to_json_line

        segment = self._active_segment(log)
        line = delta_to_json_line(deltas[2]) + "\n"
        with open(segment, "ab") as handle:
            handle.write(line.encode("utf-8")[: len(line) // 2])

        recovered = DeltaLog(log_dir)
        assert recovered.last_recovery["dropped_lines"] == 1
        assert recovered.last_recovery["truncated_bytes"] > 0
        assert recovered.last_version == deltas[1].version
        replayed = OntologyStore.bootstrap(None, recovered.read(0))
        reference = OntologyStore.bootstrap(None, deltas[:2])
        assert replayed.stats() == reference.stats()
        assert replayed.version == reference.version
        # The committed prefix accepts the re-delivered third batch.
        assert recovered.append(deltas[2]) is True
        assert OntologyStore.bootstrap(None, recovered.read(0)).stats() == \
            OntologyStore.bootstrap(None, deltas).stats()

    def test_torn_tail_with_garbage_bytes(self, producer_and_deltas,
                                          log_dir):
        _producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir)
        log.extend(deltas)
        log.close()
        with open(self._active_segment(log), "ab") as handle:
            handle.write(b'{"not a delta" \xff\xfe')
        recovered = DeltaLog(log_dir)
        assert recovered.last_version == deltas[-1].version
        assert recovered.last_recovery["truncated_bytes"] > 0

    def test_fully_torn_segment_recovers_empty(self, log_dir):
        log = DeltaLog(log_dir)
        log.close()
        with open(self._active_segment(log), "ab") as handle:
            handle.write(b"garbage-without-newline")
        recovered = DeltaLog(log_dir)
        assert recovered.first_version == recovered.last_version == 0
        assert recovered.read(0) == []

    def test_clean_log_recovery_is_noop(self, producer_and_deltas, log_dir):
        _producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir, segment_max_bytes=256)
        log.extend(deltas)
        log.close()
        recovered = DeltaLog(log_dir, segment_max_bytes=256)
        assert recovered.last_recovery["dropped_lines"] == 0
        assert recovered.last_recovery["truncated_bytes"] == 0
        assert [d.version for d in recovered.read(0)] == \
            [d.version for d in deltas]


# ----------------------------------------------------------------------
# SnapshotCatalog
# ----------------------------------------------------------------------
class TestSnapshotCatalog:
    def test_threshold_triggers_compaction_and_gc(self, producer_and_deltas,
                                                  log_dir):
        producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir, segment_max_bytes=256)
        catalog = SnapshotCatalog(log, compact_bytes=1 << 20,
                                  retain_segments=0)
        log.extend(deltas)
        store = OntologyStore.bootstrap(None, deltas)
        # Below the threshold: nothing happens.
        assert catalog.maybe_compact(store) is None
        tight = SnapshotCatalog(log, path=log_dir / "snapshots",
                                compact_bytes=64, retain_segments=0)
        version = tight.maybe_compact(store)
        assert version == store.version
        assert tight.latest_version == store.version
        # Folded segments are gone; only the active segment remains.
        assert len(log.segments()) == 1
        assert log.first_version > 0
        snapshot, snap_version = tight.latest()
        assert snap_version == store.version
        assert OntologyStore.bootstrap(snapshot, []).stats() == \
            producer.stats()

    def test_retained_tail_survives_gc(self, producer_and_deltas, log_dir):
        _producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir, segment_max_bytes=256)
        log.extend(deltas)
        sealed = len(log.segments()) - 1
        assert sealed >= 2  # the roll bound must give us a real tail
        catalog = SnapshotCatalog(log, compact_bytes=1, retain_segments=1)
        catalog.record(OntologyStore.bootstrap(None, deltas))
        # One folded segment was kept for slightly-stale followers.
        assert len(log.segments()) == 2

    def test_snapshot_plus_tail_equals_full_replay(self, producer_and_deltas,
                                                   log_dir):
        producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir)
        log.extend(deltas[:2])
        catalog = SnapshotCatalog(log, compact_bytes=1, retain_segments=0)
        catalog.record(OntologyStore.bootstrap(None, deltas[:2]))
        log.append(deltas[2])
        snapshot, version = catalog.latest()
        tail = log.read(version)
        bootstrapped = OntologyStore.bootstrap(snapshot, tail)
        assert bootstrapped.stats() == producer.stats()
        assert bootstrapped.version == producer.version

    def test_old_snapshots_pruned(self, producer_and_deltas, log_dir):
        _producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir)
        catalog = SnapshotCatalog(log, compact_bytes=1, retain_snapshots=2)
        for upto in range(1, len(deltas) + 1):
            log.extend(deltas[:upto])
            catalog.record(OntologyStore.bootstrap(None, deltas[:upto]))
        assert len(catalog.snapshots()) == 2
        on_disk = sorted(p.name for p in catalog.path.glob("snapshot-*.json"))
        assert len(on_disk) == 2
        assert catalog.latest_version == deltas[-1].version

    def test_stale_record_rejected(self, producer_and_deltas, log_dir):
        _producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir)
        log.extend(deltas)
        catalog = SnapshotCatalog(log, compact_bytes=1)
        catalog.record(OntologyStore.bootstrap(None, deltas))
        behind = OntologyStore.bootstrap(None, deltas[:1])
        with pytest.raises(OntologyError, match="behind the catalog"):
            catalog.record(behind)


# ----------------------------------------------------------------------
# publisher + follower (log shipping over the wire)
# ----------------------------------------------------------------------
class TestPublisherFollower:
    def test_local_follower_snapshot_plus_tail(self, producer_and_deltas,
                                               log_dir):
        producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir)
        log.extend(deltas[:2])
        catalog = SnapshotCatalog(log, compact_bytes=1, retain_segments=0)
        catalog.record(OntologyStore.bootstrap(None, deltas[:2]))
        log.append(deltas[2])
        follower = LogFollower(LocalLogClient(log, catalog))
        follower.bootstrap()
        assert follower.store.stats() == producer.stats()
        assert follower.version == producer.version
        assert follower.poll() == 0  # already current

    def test_socket_follower_bootstrap_poll_and_wait(self,
                                                     producer_and_deltas,
                                                     log_dir):
        producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir)
        log.extend(deltas[:2])
        catalog = SnapshotCatalog(log, compact_bytes=1, retain_segments=0)
        catalog.record(OntologyStore.bootstrap(None, deltas[:2]))
        with PublisherThread(log, catalog) as publisher:
            host, port = publisher.address
            with SyncLogClient.connect(host, port) as client:
                follower = LogFollower(client)
                follower.bootstrap()
                assert follower.store.stats() == \
                    OntologyStore.bootstrap(None, deltas[:2]).stats()
                publisher.publish([deltas[2]])
                assert follower.poll(timeout=5.0) == 1
                assert follower.store.stats() == producer.stats()
                status = client.status()
                assert status["log"]["last_version"] == producer.version
                assert status["catalog"]["latest_version"] == \
                    deltas[1].version

    def test_follower_recovers_from_gc_gap(self, producer_and_deltas,
                                           log_dir):
        """A follower that fell behind the GC'd prefix hits
        DeltaGapError on fetch and recovers by re-bootstrapping from the
        newest snapshot."""
        producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir, segment_max_bytes=128)
        log.append(deltas[0])
        catalog = SnapshotCatalog(log, compact_bytes=1, retain_segments=0)
        with PublisherThread(log, catalog) as publisher:
            host, port = publisher.address
            with SyncLogClient.connect(host, port) as client:
                follower = LogFollower(client)
                follower.bootstrap()  # full replay: no snapshot yet
                assert follower.version == deltas[0].version
                # The log moves on and compacts past the follower.
                publisher.publish(deltas[1:])
                publisher.call(lambda: catalog.record(
                    OntologyStore.bootstrap(None, deltas)))
                assert log.first_version > deltas[0].version
                applied = follower.poll()
                assert follower.recoveries == 1
                assert follower.bootstraps == 2
                assert applied >= 0
                assert follower.store.stats() == producer.stats()
                assert follower.version == producer.version

    def test_fetch_behind_gc_raises_gap(self, producer_and_deltas, log_dir):
        _producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir, segment_max_bytes=128)
        log.extend(deltas)
        catalog = SnapshotCatalog(log, compact_bytes=1, retain_segments=0)
        catalog.record(OntologyStore.bootstrap(None, deltas))
        with PublisherThread(log, catalog) as publisher:
            host, port = publisher.address
            with SyncLogClient.connect(host, port) as client:
                with pytest.raises(DeltaGapError):
                    client.fetch(0)

    def test_wait_times_out_empty(self, producer_and_deltas, log_dir):
        _producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir)
        log.extend(deltas)
        with PublisherThread(log) as publisher:
            host, port = publisher.address
            with SyncLogClient.connect(host, port) as client:
                assert client.wait(log.last_version, timeout=0.2) == []

    def test_registered_follower_delays_segment_gc(self,
                                                   producer_and_deltas,
                                                   log_dir):
        """Satellite regression (ROADMAP "publisher-side follower
        offsets"): a *registered* follower's position is a GC floor —
        compaction keeps the segments it still needs, so it catches up
        from the log with no DeltaGapError re-bootstrap; once it has
        advanced, re-recording the (idempotent) snapshot releases the
        delayed GC."""
        producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir, segment_max_bytes=128)
        log.append(deltas[0])
        catalog = SnapshotCatalog(log, compact_bytes=1, retain_segments=0)
        with PublisherThread(log, catalog) as publisher:
            host, port = publisher.address
            with SyncLogClient.connect(host, port,
                                       follower_id="slow") as client:
                follower = LogFollower(client)
                follower.bootstrap()  # fetch(0) registers position 0
                assert follower.version == deltas[0].version
                # The log moves on and compacts past the follower...
                publisher.publish(deltas[1:])
                publisher.call(lambda: catalog.record(
                    OntologyStore.bootstrap(None, deltas)))
                # ...but the folded segments the follower still needs
                # survive: the GC floor held them back.
                assert log.first_version == 0
                assert follower.poll() > 0
                assert follower.recoveries == 0  # caught up from the log
                assert follower.bootstraps == 1  # no snapshot fallback
                assert follower.store.stats() == producer.stats()
                # One more poll reports the head position to the
                # publisher; the idempotent re-record now completes the
                # delayed GC.
                assert follower.poll() == 0
                publisher.call(lambda: catalog.record(
                    OntologyStore.bootstrap(None, deltas)))
                # Everything but the never-dropped active segment went.
                assert len(log.segments()) == 1
                assert log.first_version > 0
            # close() deregistered the follower; nothing pins the floor.
            assert publisher.call(
                lambda: publisher._publisher.follower_floor()) is None

    def test_unregistered_follower_still_rebootstraps(self,
                                                      producer_and_deltas,
                                                      log_dir):
        """Without a follower_id nothing delays GC — the pre-offsets
        behavior (snapshot re-bootstrap on gap) still stands."""
        producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir, segment_max_bytes=128)
        log.append(deltas[0])
        catalog = SnapshotCatalog(log, compact_bytes=1, retain_segments=0)
        with PublisherThread(log, catalog) as publisher:
            host, port = publisher.address
            with SyncLogClient.connect(host, port) as client:
                follower = LogFollower(client)
                follower.bootstrap()
                publisher.publish(deltas[1:])
                publisher.call(lambda: catalog.record(
                    OntologyStore.bootstrap(None, deltas)))
                assert log.first_version > deltas[0].version  # GC ran
                follower.poll()
                assert follower.recoveries == 1
                assert follower.store.stats() == producer.stats()

    def test_follower_lag_gauges_reflect_induced_lag(self,
                                                     producer_and_deltas,
                                                     log_dir):
        """Observability satellite: the publisher's per-follower lag
        gauges — versions behind the head and the age (on the registry's
        injectable clock) of the oldest unconsumed publish — track
        induced lag exactly and return to zero once the follower
        catches up."""
        from repro.obs import MetricsRegistry

        class _Clock:
            now = 100.0

            def __call__(self):
                return self.now

        producer, deltas = producer_and_deltas
        clock = _Clock()
        registry = MetricsRegistry(clock=clock)
        log = DeltaLog(log_dir)
        log.append(deltas[0])
        head = log.last_version
        with PublisherThread(log, registry=registry) as publisher:
            host, port = publisher.address
            with SyncLogClient.connect(host, port,
                                       follower_id="lagger") as lagger:
                lagger.fetch(0)     # registers at position 0
                lagger.fetch(head)  # ...then reports itself caught up
                snap = registry.snapshot()
                assert snap["replication.follower.lagger.lag_versions"] == 0
                assert snap["replication.follower.lagger.lag_seconds"] == 0.0
                assert snap["replication.gc_floor"] == head
                # Induce lag: two publishes age on the fake clock while
                # the follower fetches nothing.
                _Clock.now += 5.0
                publisher.publish([deltas[1]])  # stamped at t=105
                _Clock.now += 7.0
                publisher.publish([deltas[2]])  # stamped at t=112
                _Clock.now += 3.0               # readout time t=115
                # Any follower interaction refreshes every lag gauge —
                # here a second follower registering at the head.
                with SyncLogClient.connect(host, port,
                                           follower_id="probe") as probe:
                    probe.register(since=log.last_version)
                    snap = registry.snapshot()
                    assert snap["replication.followers"] == 2
                    assert snap[
                        "replication.follower.lagger.lag_versions"] == \
                        log.last_version - head
                    # Oldest unconsumed publish is deltas[1] at t=105.
                    assert snap[
                        "replication.follower.lagger.lag_seconds"] == \
                        pytest.approx(10.0)
                    assert snap[
                        "replication.follower.probe.lag_versions"] == 0
                    # The slowest registered follower pins the GC floor.
                    assert snap["replication.gc_floor"] == head
                    # Catching up zeroes both gauges again.
                    assert len(lagger.fetch(head)) == 2
                    lagger.fetch(log.last_version)
                    snap = registry.snapshot()
                    assert snap[
                        "replication.follower.lagger.lag_versions"] == 0
                    assert snap[
                        "replication.follower.lagger.lag_seconds"] == 0.0
                    assert snap["replication.gc_floor"] == log.last_version
                    assert snap["replication.publishes"] == 2
                    assert snap["replication.published_deltas"] == 2
                    assert snap["replication.fetches"] >= 3


# ----------------------------------------------------------------------
# remote shard cluster (the end-to-end byte-identity oracle)
# ----------------------------------------------------------------------
class TestRemoteShardCluster:
    def test_remote_cluster_byte_identical_to_single_and_inprocess(
            self, producer_and_deltas, ner, log_dir):
        """Acceptance gate: rpc.dumps of every serving endpoint response
        is identical across (a) a single store, (b) the in-process
        ClusterService, and (c) a remote-shard cluster whose follower
        workers bootstrapped from SnapshotCatalog snapshot + DeltaLog
        tail — including after a published refresh."""
        producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir, segment_max_bytes=512)
        log.extend(deltas[:2])
        catalog = SnapshotCatalog(log, compact_bytes=1, retain_segments=0)
        catalog.record(OntologyStore.bootstrap(None, deltas[:2]))
        log.append(deltas[2])  # the tail beyond the snapshot

        single = OntologyService(producer, ner=ner,
                                 tagger_options=TAGGER_OPTIONS)
        inproc = ClusterService(num_shards=2, ner=ner,
                                tagger_options=TAGGER_OPTIONS, deltas=deltas)
        concept = producer.find(NodeType.CONCEPT, "marvel superhero movies")

        def endpoint_bytes(service):
            service.record_read("u1", ["iron man", "marvel superhero movies"])
            return [
                dumps(service.tag_documents(DOCS)),
                dumps(service.interpret_queries(QUERIES)),
                dumps(service.neighborhood(concept.node_id, depth=2)),
                dumps(service.concepts_of_entity("hulk")),
                dumps(service.user_interests("u1", k=5)),
                dumps(service.recommend_for_user("u1", k=3)),
                dumps(service.stats()["ontology"]),
            ]

        with PublisherThread(log, catalog) as publisher:
            with RemoteClusterService(publisher.address, num_shards=2,
                                      ner=ner,
                                      tagger_options=TAGGER_OPTIONS
                                      ) as remote:
                assert remote.version == producer.version
                assert endpoint_bytes(single) == endpoint_bytes(inproc) \
                    == endpoint_bytes(remote)
                # A batch published to the log reaches every worker.
                producer.begin_delta("day4")
                producer.add_node(NodeType.EVENT,
                                  "hulk cameo confirmed in new trailer")
                fourth = producer.commit_delta()
                publisher.publish([fourth])
                single.refresh([fourth])
                inproc.refresh([fourth])
                assert remote.refresh([fourth]) == 1
                fresh = [("n", tokenize("hulk cameo confirmed in new trailer"),
                          [])]
                assert dumps(single.tag_documents(fresh)) \
                    == dumps(inproc.tag_documents(fresh)) \
                    == dumps(remote.tag_documents(fresh))
                shards = remote.stats()["shards"]
                assert len(shards) == 2
                assert sum(line["owned"] for line in shards) == \
                    len(producer.store)
                # Catch-up came from the log, not a gap re-bootstrap.
                syncs = [replica.sync(remote.version)
                         for replica in remote.replicas]
                assert all(not line["recovered"] for line in syncs)

    def test_remote_refresh_requires_published_deltas(
            self, producer_and_deltas, ner, log_dir):
        producer, deltas = producer_and_deltas
        log = DeltaLog(log_dir)
        log.extend(deltas)
        with PublisherThread(log) as publisher:
            with RemoteClusterService(publisher.address, num_shards=2,
                                      ner=ner,
                                      tagger_options=TAGGER_OPTIONS
                                      ) as remote:
                producer.begin_delta("day4")
                producer.add_node(NodeType.EVENT, "unpublished event")
                fourth = producer.commit_delta()
                with pytest.raises(OntologyError, match="publish"):
                    remote.refresh([fourth])  # never written to the log
