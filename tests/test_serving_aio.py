"""Tests for repro.serving.aio/batcher/rpc: the async serving tier.

Every async test runs through ``run_async`` which wraps the coroutine in
``asyncio.wait_for`` — the suite's per-test timeout guard, so a hung
event loop fails fast instead of wedging CI.
"""

import asyncio

import pytest

from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.errors import ReproError
from repro.serving import (AsyncOntologyService, MicroBatcher,
                           OntologyService, RpcClient, RpcError, RpcServer)
from repro.serving import rpc
from repro.text.ner import NerTagger
from repro.text.tokenizer import tokenize

ASYNC_TEST_TIMEOUT = 60.0


def run_async(coro, timeout: float = ASYNC_TEST_TIMEOUT):
    """Run ``coro`` under the per-test timeout guard (no hung loops)."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


@pytest.fixture
def small_ontology():
    onto = AttentionOntology()
    concept = onto.add_node(
        NodeType.CONCEPT, "marvel superhero movies",
        payload={"context_titles": [tokenize("best marvel superhero movies")]},
    )
    for name in ("iron man", "captain america", "black panther"):
        entity = onto.add_node(NodeType.ENTITY, name)
        onto.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
    onto.add_node(NodeType.EVENT, "black panther premiere breaks box office record")
    a = onto.find(NodeType.ENTITY, "iron man")
    b = onto.find(NodeType.ENTITY, "captain america")
    onto.add_edge(a.node_id, b.node_id, EdgeType.CORRELATE)
    return onto


@pytest.fixture
def ner():
    t = NerTagger()
    for name in ("iron man", "captain america", "black panther"):
        t.register(name, "WORK")
    return t


@pytest.fixture
def sync_service(small_ontology, ner):
    return OntologyService(
        small_ontology, ner=ner,
        tagger_options={"coherence_threshold": 0.01, "lcs_threshold": 0.6},
    )


def make_docs(n=6):
    return [
        (f"d{i}", tokenize("iron man and captain america reviewed"),
         [tokenize("both iron man and captain america delight fans")])
        for i in range(n)
    ]


QUERIES = ["best marvel superhero movies", "iron man review"]


def fresh_sync_pair(ner):
    """A producer ontology plus an empty serving replica, for refresh
    tests (the producer emits the delta stream the replica replays)."""
    producer = AttentionOntology()
    producer.begin_delta("build")
    concept = producer.add_node(NodeType.CONCEPT, "space probes")
    entity = producer.add_node(NodeType.ENTITY, "voyager 1")
    producer.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
    first = producer.commit_delta()
    producer.begin_delta("day2")
    other = producer.add_node(NodeType.ENTITY, "voyager 2")
    producer.add_edge(concept.node_id, other.node_id, EdgeType.ISA)
    second = producer.commit_delta()
    replica = OntologyService(AttentionOntology(), ner=ner)
    return replica, first, second


# ----------------------------------------------------------------------
# MicroBatcher mechanics
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_flush_on_max_batch_size(self):
        executed = []

        def execute(kind, items):
            executed.append(list(items))
            return items

        async def main():
            batcher = MicroBatcher(execute, max_batch_size=4, max_delay=0.05)
            results = await asyncio.gather(
                *[batcher.submit("echo", [i]) for i in range(10)])
            await batcher.close()
            return results

        results = run_async(main())
        assert [r for [r] in results] == list(range(10))
        # 10 singleton requests, all queued before the deadline: flushed
        # by size — batches of 4, 4, 2 (only the tail waits it out).
        assert [len(batch) for batch in executed] == [4, 4, 2]

    def test_flush_on_deadline(self):
        executed = []

        def execute(kind, items):
            executed.append(list(items))
            return items

        async def main():
            batcher = MicroBatcher(execute, max_batch_size=100,
                                   max_delay=0.005)
            [result] = await batcher.submit("echo", ["solo"])
            await batcher.close()
            return result

        assert run_async(main()) == "solo"
        assert executed == [["solo"]]  # nothing else arrived; deadline flushed
        # (the request completed at all proves the deadline path fires)

    def test_kind_change_breaks_batch(self):
        executed = []

        def execute(kind, items):
            executed.append((kind, list(items)))
            return items

        async def main():
            batcher = MicroBatcher(execute, max_batch_size=100, max_delay=0.05)
            await asyncio.gather(
                batcher.submit("a", [1]),
                batcher.submit("a", [2]),
                batcher.submit("b", [3]),
                batcher.submit("a", [4]),
            )
            await batcher.close()

        run_async(main())
        assert executed == [("a", [1, 2]), ("b", [3]), ("a", [4])]

    def test_non_mergeable_never_merged(self):
        executed = []

        def execute(kind, items):
            executed.append(list(items))
            return items

        async def main():
            batcher = MicroBatcher(execute, max_batch_size=100, max_delay=10.0)
            await asyncio.gather(
                *[batcher.submit("solo", [i], mergeable=False)
                  for i in range(3)])
            await batcher.close()

        run_async(main())
        assert sorted(executed) == [[0], [1], [2]]

    def test_executor_failure_scatters_to_all_waiters(self):
        def execute(kind, items):
            raise ValueError("backend exploded")

        async def main():
            batcher = MicroBatcher(execute, max_batch_size=8, max_delay=0.001)
            results = await asyncio.gather(
                *[batcher.submit("k", [i]) for i in range(3)],
                return_exceptions=True)
            # The dispatcher survives a failed batch.
            assert all(isinstance(r, ValueError) for r in results)
            await batcher.close()

        run_async(main())

    def test_misaligned_executor_output_rejected(self):
        async def main():
            batcher = MicroBatcher(lambda kind, items: [], max_batch_size=4,
                                   max_delay=0.001)
            with pytest.raises(ReproError, match="0 results for 1 items"):
                await batcher.submit("k", ["x"])
            await batcher.close()

        run_async(main())

    def test_closed_batcher_rejects_submits(self):
        async def main():
            batcher = MicroBatcher(lambda kind, items: items)
            await batcher.submit("k", [1])
            await batcher.close()
            with pytest.raises(ReproError, match="closed"):
                await batcher.submit("k", [2])

        run_async(main())


# ----------------------------------------------------------------------
# AsyncOntologyService: sync/async byte-identity
# ----------------------------------------------------------------------
class TestAsyncService:
    def test_tag_and_query_match_sync(self, sync_service):
        docs = make_docs()
        expected_tags = sync_service.tag_documents(docs)
        expected_queries = sync_service.interpret_queries(QUERIES)

        async def main():
            async with AsyncOntologyService(sync_service) as aio:
                tags = await aio.tag_documents(docs)
                queries = await aio.interpret_queries(QUERIES)
            return tags, queries

        tags, queries = run_async(main())
        assert tags == expected_tags
        assert rpc.dumps(tags) == rpc.dumps(expected_tags)
        assert queries == expected_queries

    def test_eight_concurrent_streams_byte_identical(self, sync_service):
        docs = make_docs()
        expected = sync_service.tag_documents(docs)

        async def main():
            async with AsyncOntologyService(sync_service, max_batch_size=16,
                                            max_delay=0.002) as aio:
                results = await asyncio.gather(
                    *[aio.tag_documents(docs) for _ in range(8)])
                stats = await aio.stats()
            return results, stats

        results, stats = run_async(main())
        assert len(results) == 8
        for stream_result in results:
            assert stream_result == expected
            assert rpc.dumps(stream_result) == rpc.dumps(expected)
        # Micro-batching actually merged concurrent streams.
        assert stats["async"]["batches"] < stats["async"]["requests"]

    def test_point_endpoints_match_sync(self, sync_service, small_ontology):
        concept = small_ontology.find(NodeType.CONCEPT,
                                      "marvel superhero movies")
        expected_nbhd = sync_service.neighborhood(concept.node_id, depth=2)
        sync_service.record_read("sync-user", ["iron man"])
        expected_rec = sync_service.recommend_for_user("sync-user")

        async def main():
            async with AsyncOntologyService(sync_service) as aio:
                nbhd = await aio.neighborhood(concept.node_id, depth=2)
                coe = await aio.concepts_of_entity("iron man")
                await aio.record_read("async-user", ["iron man"])
                rec = await aio.recommend_for_user("async-user")
                interests = await aio.user_interests(
                    "async-user", node_type=NodeType.CONCEPT)
            return nbhd, coe, rec, interests

        nbhd, coe, rec, interests = run_async(main())
        assert nbhd == expected_nbhd
        assert coe == ("marvel superhero movies",)
        assert rec == expected_rec
        assert [phrase for phrase, _w in interests] == [
            "marvel superhero movies"]

    def test_error_propagates_and_loop_survives(self, small_ontology):
        service = OntologyService(small_ontology)  # no NER

        async def main():
            async with AsyncOntologyService(service) as aio:
                with pytest.raises(ReproError):
                    await aio.tag_documents([("d", [], [])])
                # The dispatcher is still alive afterwards.
                analyses = await aio.interpret_queries(["iron man review"])
            return analyses

        [analysis] = run_async(main())
        assert analysis.query == "iron man review"

    def test_refresh_between_batches_is_version_consistent(self, ner):
        replica, first, second = fresh_sync_pair(ner)
        # Sync oracle: interpretation before and after the second delta.
        oracle, o_first, o_second = fresh_sync_pair(ner)
        oracle.refresh([o_first])
        before = oracle.interpret_queries(["famous space probes"])
        oracle.refresh([o_second])
        after = oracle.interpret_queries(["famous space probes"])
        assert before != after  # the refresh is observable

        async def main():
            async with AsyncOntologyService(replica, max_delay=0.002) as aio:
                assert await aio.refresh([first]) == 1
                streams = [aio.interpret_queries(["famous space probes"])
                           for _ in range(4)]
                refresh_task = asyncio.ensure_future(aio.refresh([second]))
                results = await asyncio.gather(*streams)
                await refresh_task
                final = await aio.interpret_queries(["famous space probes"])
                stats = await aio.stats()
            return results, final, stats

        results, final, stats = run_async(main())
        # Every response equals exactly one version's sync answer —
        # never a mix of pre- and post-refresh state.
        for [analysis] in results:
            assert analysis in (before[0], after[0])
        assert final == after
        assert stats["deltas_applied"] == 2

    def test_async_stats_carry_batching_counters(self, sync_service):
        async def main():
            async with AsyncOntologyService(sync_service) as aio:
                await aio.interpret_queries(QUERIES)
                return await aio.stats()

        stats = run_async(main())
        assert stats["queries_interpreted"] == 2
        assert stats["async"]["requests"] >= 1
        assert stats["async"]["items"] >= 2


# ----------------------------------------------------------------------
# RPC wrapper
# ----------------------------------------------------------------------
class TestRpc:
    def test_codec_round_trips_serving_objects(self, sync_service):
        docs = make_docs(2)
        tagged = sync_service.tag_documents(docs)
        analyses = sync_service.interpret_queries(QUERIES)
        for obj in (tagged, analyses, ("a", 1.5), {"k": (1, 2)},
                    {"s": {"x", "y"}}, EdgeType.ISA, None, [True, 2, "3"]):
            assert rpc.loads(rpc.dumps(obj)) == obj

    def test_codec_sorts_sets_of_unorderable_encodings(self):
        # Encoded set elements can be dicts (tuples) or mixed types;
        # canonical-JSON keying keeps the order deterministic anyway.
        for obj in ({(1, 2), (3, 4)}, {1, "a"}, {(2, "b"), (1, "a")}):
            assert rpc.loads(rpc.dumps(obj)) == obj
        assert rpc.dumps({(3, 4), (1, 2)}) == rpc.dumps({(1, 2), (3, 4)})

    def test_codec_escapes_dunder_payload_keys(self):
        # Ontology payloads are arbitrary dicts; dunder keys must not
        # collide with the codec's type markers.
        for obj in ({"__meta": 1}, {"__tuple__": [1, 2]},
                    {"__esc__already": {"__dc__": "x"}}):
            assert rpc.loads(rpc.dumps(obj)) == obj

    def test_server_caps_inflight_requests_per_connection(self,
                                                          sync_service):
        """A tiny per-connection cap still serves every pipelined
        request correctly — reads just pause while the cap is hit."""
        expected = sync_service.interpret_queries(QUERIES)

        async def main():
            async with AsyncOntologyService(sync_service) as aio:
                server = RpcServer(aio, max_inflight=2)
                host, port = await server.start()
                async with await RpcClient.connect(host, port) as client:
                    results = await asyncio.gather(
                        *[client.call("interpret_queries", QUERIES)
                          for _ in range(10)])
                await server.close()
            return results

        for result in run_async(main()):
            assert result == expected

    def test_client_close_fails_in_flight_calls(self):
        """A closed client must fail pending calls, not hang them."""
        async def main():
            async def mute_server(reader, writer):
                await reader.read(-1)  # swallow requests, never reply

            server = await asyncio.start_server(mute_server, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            client = await RpcClient.connect(host, port)
            call = asyncio.ensure_future(client.call("stats"))
            await asyncio.sleep(0.05)  # let the request hit the wire
            await client.close()
            with pytest.raises(ReproError, match="closed"):
                await asyncio.wait_for(call, 5)
            # Calls issued after the receive loop died fail fast too,
            # instead of registering futures nothing will resolve.
            with pytest.raises(ReproError, match="closed"):
                await client.call("stats")
            server.close()
            await server.wait_closed()

        run_async(main())

    def test_rpc_results_byte_identical_to_sync(self, sync_service):
        docs = make_docs()
        expected_tags = sync_service.tag_documents(docs)
        expected_queries = sync_service.interpret_queries(QUERIES)

        async def main():
            async with AsyncOntologyService(sync_service) as aio:
                server = RpcServer(aio)
                host, port = await server.start()
                async with await RpcClient.connect(host, port) as client:
                    tags = await client.call("tag_documents", docs)
                    queries = await client.call("interpret_queries", QUERIES)
                    coe = await client.call("concepts_of_entity", "iron man")
                await server.close()
            return tags, queries, coe

        tags, queries, coe = run_async(main())
        assert tags == expected_tags
        assert rpc.dumps(tags) == rpc.dumps(expected_tags)
        assert queries == expected_queries
        assert coe == ("marvel superhero movies",)

    def test_eight_concurrent_rpc_clients(self, sync_service):
        docs = make_docs()
        expected = sync_service.tag_documents(docs)

        async def one_stream(host, port):
            async with await RpcClient.connect(host, port) as client:
                return await client.call("tag_documents", docs)

        async def main():
            async with AsyncOntologyService(sync_service, max_batch_size=16,
                                            max_delay=0.002) as aio:
                server = RpcServer(aio)
                host, port = await server.start()
                results = await asyncio.gather(
                    *[one_stream(host, port) for _ in range(8)])
                await server.close()
            return results

        results = run_async(main())
        assert len(results) == 8
        for stream_result in results:
            assert stream_result == expected
            assert rpc.dumps(stream_result) == rpc.dumps(expected)

    def test_rpc_refresh_advances_replica(self, ner):
        replica, first, second = fresh_sync_pair(ner)

        async def main():
            async with AsyncOntologyService(replica) as aio:
                server = RpcServer(aio)
                host, port = await server.start()
                async with await RpcClient.connect(host, port) as client:
                    applied = await client.call("refresh", [first, second])
                    coe = await client.call("concepts_of_entity", "voyager 2")
                    stats = await client.call("stats")
                await server.close()
            return applied, coe, stats

        applied, coe, stats = run_async(main())
        assert applied == 2
        assert coe == ("space probes",)
        assert stats["version"] == replica.version

    def test_rpc_gap_reported_as_delta_gap_error(self, ner):
        replica, _first, second = fresh_sync_pair(ner)

        async def main():
            async with AsyncOntologyService(replica) as aio:
                server = RpcServer(aio)
                host, port = await server.start()
                async with await RpcClient.connect(host, port) as client:
                    with pytest.raises(RpcError) as excinfo:
                        await client.call("refresh", [second])
                await server.close()
            return excinfo.value

        error = run_async(main())
        assert error.error_type == "DeltaGapError"
        assert "missing versions" in error.message

    def test_unknown_method_rejected(self, sync_service):
        async def main():
            async with AsyncOntologyService(sync_service) as aio:
                server = RpcServer(aio)
                host, port = await server.start()
                async with await RpcClient.connect(host, port) as client:
                    with pytest.raises(RpcError, match="unknown RPC method"):
                        await client.call("no_such_method")
                    with pytest.raises(RpcError, match="unknown RPC method"):
                        await client.call("_execute")  # internals stay private
                await server.close()

        run_async(main())

    def test_server_error_propagates_with_type(self, small_ontology):
        service = OntologyService(small_ontology)  # no NER -> tagging raises

        async def main():
            async with AsyncOntologyService(service) as aio:
                server = RpcServer(aio)
                host, port = await server.start()
                async with await RpcClient.connect(host, port) as client:
                    with pytest.raises(RpcError) as excinfo:
                        await client.call("tag_documents", make_docs(1))
                await server.close()
            return excinfo.value

        error = run_async(main())
        assert error.error_type == "ReproError"
