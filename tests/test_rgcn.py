"""Tests for repro.nn.rgcn."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.functional import cross_entropy
from repro.nn.optim import Adam
from repro.nn.rgcn import RGCN, RGCNLayer, normalize_adjacency


class TestNormalizeAdjacency:
    def test_rows_sum_to_one_or_zero(self):
        adj = np.array([[0, 1, 1], [0, 0, 0], [1, 0, 0]], dtype=float)
        norm = normalize_adjacency(adj)
        sums = norm.sum(axis=1)
        assert sums[0] == pytest.approx(1.0)
        assert sums[1] == 0.0
        assert sums[2] == pytest.approx(1.0)

    def test_no_nan_on_isolated_nodes(self):
        norm = normalize_adjacency(np.zeros((3, 3)))
        assert not np.isnan(norm).any()


class TestRGCNLayer:
    def test_output_shape(self):
        layer = RGCNLayer(4, 6, num_relations=2, num_bases=2)
        h = Tensor(np.random.default_rng(0).standard_normal((5, 4)))
        adjs = [normalize_adjacency(np.eye(5)), normalize_adjacency(np.ones((5, 5)))]
        assert layer(h, adjs).shape == (5, 6)

    def test_wrong_relation_count_raises(self):
        layer = RGCNLayer(4, 6, num_relations=2, num_bases=2)
        h = Tensor(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            layer(h, [np.eye(3)])

    def test_bases_capped_at_relations(self):
        layer = RGCNLayer(4, 6, num_relations=2, num_bases=10)
        assert layer.num_bases == 2

    def test_invalid_activation_raises(self):
        with pytest.raises(ValueError):
            RGCNLayer(4, 6, num_relations=1, num_bases=1, activation="bogus")

    def test_self_loop_only_when_no_edges(self):
        # With empty adjacencies the layer reduces to a dense layer.
        layer = RGCNLayer(4, 6, num_relations=1, num_bases=1, activation="none")
        h = Tensor(np.random.default_rng(0).standard_normal((3, 4)))
        out = layer(h, [np.zeros((3, 3))])
        expected = h.data @ layer.self_weight.data + layer.bias.data
        assert np.allclose(out.data, expected)

    def test_message_passing_uses_neighbors(self):
        layer = RGCNLayer(2, 2, num_relations=1, num_bases=1, activation="none")
        h = Tensor(np.array([[1.0, 0.0], [0.0, 0.0]]))
        adj = np.array([[0.0, 0.0], [1.0, 0.0]])  # node1 receives from node0
        out_with = layer(h, [adj])
        out_without = layer(h, [np.zeros((2, 2))])
        assert not np.allclose(out_with.data[1], out_without.data[1])
        assert np.allclose(out_with.data[0], out_without.data[0])


class TestRGCN:
    def test_structure_only_classification(self):
        # Nodes are classified by which relation connects them to a hub —
        # features are identical, so only relational structure can separate.
        rng = np.random.default_rng(0)
        n = 10
        adj_r0 = np.zeros((n, n))
        adj_r1 = np.zeros((n, n))
        labels = np.zeros(n, dtype=np.int64)
        for i in range(1, n):
            if i % 2 == 0:
                adj_r0[i, 0] = 1.0
                labels[i] = 0
            else:
                adj_r1[i, 0] = 1.0
                labels[i] = 1
        adjs = [normalize_adjacency(adj_r0), normalize_adjacency(adj_r1)]
        feats = np.ones((n, 3))
        model = RGCN(3, 16, 2, num_relations=2, num_layers=2, num_bases=2,
                     rng=rng)
        opt = Adam(list(model.parameters()), lr=0.05)
        for _epoch in range(60):
            opt.zero_grad()
            loss = cross_entropy(model(feats, adjs), labels)
            loss.backward()
            opt.step()
        pred = model(feats, adjs).data.argmax(axis=1)
        assert (pred[1:] == labels[1:]).mean() == 1.0

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            RGCN(3, 4, 2, num_relations=1, num_layers=0)

    def test_accepts_numpy_features(self):
        model = RGCN(3, 8, 2, num_relations=1, num_layers=1, num_bases=1)
        out = model(np.ones((4, 3)), [np.eye(4)])
        assert out.shape == (4, 2)
