"""Tests for bootstrap, align, coverrank, derivation, phrase normalization."""

import pytest

from repro.config import MiningConfig
from repro.core.align import align_query_title, extract_aligned_candidates
from repro.core.bootstrap import Pattern, PatternBootstrapper
from repro.core.coverrank import cover_rank, select_event_candidate, split_subtitles
from repro.core.derivation import common_pattern_discovery, common_suffix_discovery
from repro.core.phrase import AttentionPhrase, PhraseNormalizer
from repro.text.ner import NerTagger
from repro.text.pos import PosTagger


class TestPattern:
    def test_prefix_match(self):
        assert Pattern(("best",)).match(["best", "cars"]) == ("cars",)

    def test_prefix_suffix_match(self):
        p = Pattern(("what", "are"), ("?",))
        assert p.match(["what", "are", "economy", "cars", "?"]) == ("economy", "cars")

    def test_no_match(self):
        assert Pattern(("best",)).match(["top", "cars"]) is None

    def test_empty_slot_rejected(self):
        assert Pattern(("best",)).match(["best"]) is None


class TestBootstrapper:
    def test_learns_new_patterns_and_concepts(self):
        queries = [
            "best economy cars",
            "best detective fiction",
            "list of economy cars",
            "list of detective fiction",
            "list of pop singers",
        ]
        bootstrapper = PatternBootstrapper(min_pattern_support=2)
        concepts, patterns = bootstrapper.run(queries)
        assert ("economy", "cars") in concepts
        # "list of X" must be learned from the two seed-extracted concepts,
        # then extract "pop singers".
        assert any(p.prefix == ("list", "of") for p in patterns)
        assert ("pop", "singers") in concepts

    def test_no_queries(self):
        concepts, patterns = PatternBootstrapper().run([])
        assert concepts == set()

    def test_accepts_pretokenized(self):
        concepts, _p = PatternBootstrapper().run([["best", "cars"]])
        assert ("cars",) in concepts


class TestAlign:
    def test_exact_alignment(self):
        out = align_query_title(["economy", "cars"], ["the", "economy", "cars", "win"])
        assert out == ["economy", "cars"]

    def test_alignment_with_insertion(self):
        out = align_query_title(
            ["fuel", "efficient", "cars"],
            ["review", "fuel", "very", "efficient", "compact", "cars", "today"],
        )
        assert out == ["fuel", "very", "efficient", "compact", "cars"]

    def test_gap_limit(self):
        out = align_query_title(
            ["cars", "win"], ["cars", "x1", "x2", "x3", "x4", "win"], max_gap=2
        )
        assert out is None

    def test_stopwords_ignored_in_query(self):
        out = align_query_title(["the", "cars"], ["nice", "cars", "here"])
        assert out == ["cars"]

    def test_no_alignment(self):
        assert align_query_title(["cars"], ["films", "only"]) is None

    def test_candidates_deduplicated(self):
        titles = [["economy", "cars", "rock"], ["economy", "cars", "rock"]]
        out = extract_aligned_candidates(["economy", "cars"], titles)
        assert out == [["economy", "cars"]]


class TestCoverRank:
    def test_split_subtitles(self):
        tokens = ["breaking", ":", "apple", "launches", "iphone", ",", "live"]
        subs = split_subtitles(tokens)
        assert subs == [["breaking"], ["apple", "launches", "iphone"], ["live"]]

    def test_selects_covering_subtitle(self):
        queries = [["apple", "launches", "iphone"]]
        titles = [
            [
                "breaking", ":", "apple", "launches", "iphone", "12", ",",
                "what", "we", "know",
            ]
        ]
        out = select_event_candidate(queries, titles, min_len=3, max_len=10)
        assert out == ["apple", "launches", "iphone", "12"]

    def test_length_band_enforced(self):
        queries = [["apple", "launches"]]
        titles = [["apple", "launches", ",", "w1", "w2", "w3", "w4", "w5", "w6"]]
        # The covering subtitle (len 2) is below min_len; the filler subtitle
        # (len 6) is above max_len: nothing qualifies.
        assert select_event_candidate(queries, titles, min_len=3, max_len=5) is None
        # Widening the band admits the filler subtitle.
        out = select_event_candidate(queries, titles, min_len=2, max_len=20)
        assert out == ["apple", "launches"]

    def test_ctr_tie_break(self):
        queries = [["x", "y", "z"]]
        titles = [["x", "y", "z", "one"], ["x", "y", "z", "two"]]
        # Equal cover scores: higher-CTR (first) title wins.
        ranked = cover_rank(queries, titles)
        assert ranked[0][0] == ["x", "y", "z", "one"]

    def test_empty_inputs(self):
        assert select_event_candidate([], []) is None


class TestCSD:
    def test_derives_common_suffix(self):
        concepts = [
            ["famous", "animated", "films"],
            ["hayao", "miyazaki", "animated", "films"],
            ["award", "winning", "animated", "films"],
        ]
        derived = common_suffix_discovery(concepts, PosTagger(), min_count=2)
        assert ("animated", "films") in derived
        assert len(derived[("animated", "films")]) == 3

    def test_min_count_respected(self):
        concepts = [["big", "cars"], ["fast", "boats"]]
        derived = common_suffix_discovery(concepts, PosTagger(), min_count=2)
        assert derived == {}

    def test_non_noun_suffix_rejected(self):
        concepts = [["teams", "that", "win"], ["players", "that", "win"]]
        derived = common_suffix_discovery(concepts, PosTagger(), min_count=2)
        assert ("that", "win") not in derived

    def test_redundant_shorter_suffix_dropped(self):
        concepts = [
            ["famous", "animated", "films"],
            ["classic", "animated", "films"],
        ]
        derived = common_suffix_discovery(concepts, PosTagger(), min_count=2)
        # ("films",) covers the same children as ("animated", "films").
        assert ("animated", "films") in derived
        assert ("films",) not in derived


class TestCPD:
    @pytest.fixture
    def ner(self):
        t = NerTagger()
        t.register("jay chou", "PER")
        t.register("taylor swift", "PER")
        return t

    def test_derives_topic(self, ner):
        events = [
            ["jay", "chou", "will", "have", "a", "concert"],
            ["taylor", "swift", "will", "have", "a", "concert"],
        ]
        entity_concepts = {
            "jay chou": [("pop", "singers")],
            "taylor swift": [("pop", "singers")],
        }
        topics = common_pattern_discovery(events, ner, entity_concepts, min_count=2)
        assert len(topics) == 1
        assert topics[0].phrase == ("pop", "singers", "will", "have", "a", "concert")
        assert topics[0].concept == ("pop", "singers")

    def test_no_common_concept_no_topic(self, ner):
        events = [
            ["jay", "chou", "will", "have", "a", "concert"],
            ["taylor", "swift", "will", "have", "a", "concert"],
        ]
        entity_concepts = {
            "jay chou": [("male", "singers")],
            "taylor swift": [("female", "singers")],
        }
        assert common_pattern_discovery(events, ner, entity_concepts, min_count=2) == []

    def test_search_support_filter(self, ner):
        events = [
            ["jay", "chou", "will", "have", "a", "concert"],
            ["taylor", "swift", "will", "have", "a", "concert"],
        ]
        entity_concepts = {
            "jay chou": [("pop", "singers")],
            "taylor swift": [("pop", "singers")],
        }
        topics = common_pattern_discovery(
            events, ner, entity_concepts, min_count=2,
            min_search_support=5, search_counts={},
        )
        assert topics == []

    def test_most_fine_grained_concept_chosen(self, ner):
        events = [
            ["jay", "chou", "will", "have", "a", "concert"],
            ["taylor", "swift", "will", "have", "a", "concert"],
        ]
        entity_concepts = {
            "jay chou": [("singers",), ("famous", "pop", "singers")],
            "taylor swift": [("singers",), ("famous", "pop", "singers")],
        }
        topics = common_pattern_discovery(events, ner, entity_concepts, min_count=2)
        assert topics[0].concept == ("famous", "pop", "singers")


class TestNormalizer:
    def _phrase(self, tokens, titles=None):
        return AttentionPhrase(tokens=tokens, kind="concept",
                               context_titles=titles or [tokens])

    def test_identical_phrases_merge(self):
        norm = PhraseNormalizer(MiningConfig(merge_threshold=0.3))
        a = norm.add(self._phrase(["economy", "cars"], [["economy", "cars", "ranked"]]))
        b = norm.add(self._phrase(["economy", "cars"], [["economy", "cars", "ranked"]]))
        assert a is b
        assert len(norm) == 1

    def test_different_content_words_not_merged(self):
        norm = PhraseNormalizer(MiningConfig(merge_threshold=0.1))
        norm.add(self._phrase(["economy", "cars"]))
        norm.add(self._phrase(["detective", "fiction"]))
        assert len(norm) == 2

    def test_stopword_variants_merge(self):
        norm = PhraseNormalizer(MiningConfig(merge_threshold=0.3))
        ctx = [["economy", "cars", "ranked", "for", "buyers"]]
        a = norm.add(self._phrase(["the", "economy", "cars"], ctx))
        b = norm.add(self._phrase(["economy", "cars"], ctx))
        assert b is a
        # The shorter phrase becomes canonical.
        assert a.tokens == ["economy", "cars"]
        assert "the economy cars" in a.aliases

    def test_context_dissimilar_not_merged(self):
        norm = PhraseNormalizer(MiningConfig(merge_threshold=0.95))
        norm.add(self._phrase(["economy", "cars"], [["aaa", "bbb", "ccc", "ddd"]]))
        norm.add(self._phrase(["economy", "cars"], [["eee", "fff", "ggg", "hhh"]]))
        assert len(norm) == 2

    def test_support_accumulates(self):
        norm = PhraseNormalizer(MiningConfig(merge_threshold=0.3))
        ctx = [["economy", "cars", "ranked"]]
        a = norm.add(AttentionPhrase(["economy", "cars"], "concept", ctx, support=2.0))
        norm.add(AttentionPhrase(["economy", "cars"], "concept", ctx, support=3.0))
        assert a.support == 5.0

    def test_kind_separates(self):
        norm = PhraseNormalizer(MiningConfig(merge_threshold=0.3))
        ctx = [["economy", "cars", "ranked"]]
        a = norm.add(AttentionPhrase(["economy", "cars"], "concept", ctx))
        b = norm.add(AttentionPhrase(["economy", "cars"], "event", ctx))
        assert a is not b

    def test_empty_phrase_noop(self):
        norm = PhraseNormalizer()
        p = norm.add(AttentionPhrase([], "concept"))
        assert len(norm) == 0
        assert p.tokens == []
