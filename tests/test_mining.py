"""Tests for repro.core.mining (Algorithm 1 pipeline)."""

import pytest

from repro.config import GiantConfig
from repro.core.mining import AttentionMiner
from repro.text.dependency import DependencyParser


@pytest.fixture(scope="module")
def miner(click_graph, trained_concept_model, extractor, pos_tagger):
    return AttentionMiner(
        click_graph,
        concept_model=trained_concept_model,
        extractor=extractor,
        parser=DependencyParser(pos_tagger),
        config=GiantConfig(),
    )


class TestClusterTokens:
    def test_tokens_align_with_cluster(self, miner, click_graph):
        seed = click_graph.queries()[0]
        cluster = miner.cluster(seed)
        queries, titles, weights = miner.cluster_tokens(cluster)
        assert len(queries) == len(cluster.queries)
        assert len(titles) == len(weights)


class TestMineCluster:
    def test_concept_mining_with_model(self, miner, click_graph):
        seed = next(q for q in click_graph.queries() if "fuel efficient cars" in q)
        cluster = miner.cluster(seed)
        phrase = miner.mine_cluster(cluster, kind="concept")
        assert phrase is not None
        assert "cars" in phrase.tokens

    def test_event_mining_falls_back_to_coverrank(self, click_graph, extractor,
                                                  pos_tagger, world):
        miner = AttentionMiner(click_graph, extractor=extractor,
                               parser=DependencyParser(pos_tagger))
        event = next(iter(world.events.values()))
        seed = f"{event.phrase} news"
        if seed not in set(click_graph.queries()):
            seed = event.phrase
        if seed in set(click_graph.queries()):
            cluster = miner.cluster(seed)
            phrase = miner.mine_cluster(cluster, kind="event")
            assert phrase is None or phrase.kind == "event"

    def test_empty_cluster_returns_none(self, miner):
        from repro.graph.click_graph import QueryDocCluster

        cluster = QueryDocCluster(seed_query="ghost query words")
        assert miner.mine_cluster(cluster) is None


class TestMine:
    def test_mine_normalises_duplicates(self, miner, click_graph):
        seeds = [q for q in click_graph.queries() if "fuel efficient cars" in q]
        mined = miner.mine(seeds, kind="concept")
        # All seed variants describe the same concept -> few canonical nodes.
        assert 1 <= len(mined) <= len(seeds)

    def test_mined_attention_has_categories(self, miner, click_graph):
        seeds = [q for q in click_graph.queries() if "fuel efficient cars" in q][:2]
        mined = miner.mine(seeds, kind="concept")
        assert all(isinstance(m.categories, dict) for m in mined)
        assert any("sedans" in m.categories for m in mined)
