"""Tests for repro.nn.seq2seq and repro.nn.duet."""

import numpy as np
import pytest

from repro.nn.duet import DuetMatcher
from repro.nn.optim import Adam
from repro.nn.seq2seq import EOS, SOS, UNK, Seq2SeqSummarizer, Vocabulary


class TestVocabulary:
    def test_specials_reserved(self):
        v = Vocabulary()
        assert len(v) == 4

    def test_add_and_encode(self):
        v = Vocabulary()
        v.add("cars")
        assert v.encode(["cars", "unknown"]) == [4, UNK]

    def test_decode_skips_specials(self):
        v = Vocabulary()
        idx = v.add("cars")
        assert v.decode([SOS, idx, EOS]) == ["cars"]

    def test_fit_corpus(self):
        v = Vocabulary().fit([["a", "b"], ["b", "c"]])
        assert len(v) == 4 + 3


class TestSeq2Seq:
    @pytest.fixture(scope="class")
    def model(self):
        vocab = Vocabulary().fit([["copy", "this", "phrase", "now"]])
        rng = np.random.default_rng(0)
        model = Seq2SeqSummarizer(vocab, embed_dim=12, hidden=12, rng=rng)
        opt = Adam(model.parameters(), lr=0.05)
        inputs = vocab.encode(["copy", "this", "phrase", "now"])
        target = vocab.encode(["copy", "phrase"])
        for _step in range(60):
            opt.zero_grad()
            loss = model.loss(inputs, target)
            loss.backward()
            opt.step()
        return model, inputs, target, loss.item()

    def test_loss_decreases(self, model):
        _m, _i, _t, final_loss = model
        assert final_loss < 0.5

    def test_generate_memorised_target(self, model):
        m, inputs, target, _loss = model
        assert m.generate(inputs, max_len=4) == target

    def test_generate_empty_input(self, model):
        m, _i, _t, _l = model
        assert m.generate([]) == []

    def test_summarize_returns_tokens(self, model):
        m, _i, _t, _l = model
        out = m.summarize(["copy", "this", "phrase", "now"])
        assert out == ["copy", "phrase"]

    def test_loss_empty_raises(self, model):
        m, _i, _t, _l = model
        with pytest.raises(ValueError):
            m.loss([], [1])


class TestDuet:
    @pytest.fixture(scope="class")
    def trained(self):
        vocab = {w: i for i, w in enumerate(
            ["brexit", "negotiation", "cars", "review", "concert", "tour",
             "news", "report", "match"]
        )}
        matcher = DuetMatcher(vocab, embed_dim=8, hidden=8, max_phrase_len=4)
        examples = [
            (["brexit", "negotiation"], ["brexit", "negotiation", "news", "report"], 1),
            (["brexit", "negotiation"], ["cars", "review", "match"], 0),
            (["cars", "review"], ["cars", "review", "news"], 1),
            (["cars", "review"], ["concert", "tour", "report"], 0),
            (["concert", "tour"], ["concert", "tour", "news"], 1),
            (["concert", "tour"], ["brexit", "news"], 0),
        ] * 3
        matcher.fit(examples, epochs=15, lr=0.05)
        return matcher

    def test_positive_pair(self, trained):
        assert trained.predict(["brexit", "negotiation"],
                               ["brexit", "negotiation", "news"])

    def test_training_negative_pair(self, trained):
        assert not trained.predict(["brexit", "negotiation"],
                                   ["cars", "review", "match"])

    def test_scores_separate_labels(self, trained):
        from repro.nn.autograd import no_grad

        with no_grad():
            pos = trained.score(["cars", "review"], ["cars", "review", "news"]).item()
            neg = trained.score(["cars", "review"], ["concert", "tour", "report"]).item()
        assert pos > neg

    def test_score_is_scalar(self, trained):
        s = trained.score(["cars"], ["cars", "news"])
        assert s.shape == ()

    def test_empty_doc_handled(self, trained):
        # Should not raise.
        trained.predict(["cars"], [])

    def test_fit_empty_raises(self):
        matcher = DuetMatcher({"a": 0})
        with pytest.raises(ValueError):
            matcher.fit([])

    def test_local_features_shape(self):
        matcher = DuetMatcher({"a": 0}, max_phrase_len=3)
        feats = matcher._local_features(["a", "b"], ["a", "c", "a"])
        assert feats.shape == (9,)
        assert feats[0] == 1.0  # "a" present
        assert feats[3] == 0.0  # "b" absent
