"""Tests for FeedSimulator with a mined (imperfect) ontology."""

import pytest

from repro.apps.recsys import ArmConfig, FeedSimulator
from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.synth.world import WorldConfig, build_world


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(num_days=4, seed=6))


def gold_ontology(world) -> AttentionOntology:
    onto = AttentionOntology()
    for concept in world.concepts.values():
        cnode = onto.add_node(NodeType.CONCEPT, concept.phrase)
        for member in concept.members:
            enode = onto.add_node(NodeType.ENTITY, member)
            onto.add_edge(cnode.node_id, enode.node_id, EdgeType.ISA)
    return onto


def degraded_ontology(world) -> AttentionOntology:
    """Half the concept-entity edges missing (noisy mining)."""
    onto = AttentionOntology()
    for concept in world.concepts.values():
        cnode = onto.add_node(NodeType.CONCEPT, concept.phrase)
        for i, member in enumerate(concept.members):
            if i % 2 == 1:
                continue
            enode = onto.add_node(NodeType.ENTITY, member)
            onto.add_edge(cnode.node_id, enode.node_id, EdgeType.ISA)
    return onto


def mean_ctr(results):
    clicks = sum(r.clicks for r in results)
    impressions = sum(r.impressions for r in results)
    return clicks / impressions if impressions else 0.0


class TestMinedOntologyMode:
    def test_gold_ontology_matches_default(self, world):
        arm = ArmConfig("c", ("concept",))
        default = FeedSimulator(world, num_users=120, seed=3).simulate_arm(arm)
        with_gold = FeedSimulator(world, num_users=120, seed=3,
                                  ontology=gold_ontology(world)).simulate_arm(arm)
        assert [(r.impressions, r.clicks) for r in default] == [
            (r.impressions, r.clicks) for r in with_gold
        ]

    def test_degraded_ontology_reduces_concept_reach(self, world):
        arm = ArmConfig("c", ("concept",))
        full = FeedSimulator(world, num_users=120, seed=3,
                             ontology=gold_ontology(world)).simulate_arm(arm)
        degraded = FeedSimulator(world, num_users=120, seed=3,
                                 ontology=degraded_ontology(world)).simulate_arm(arm)
        assert sum(r.impressions for r in degraded) < sum(r.impressions for r in full)

    def test_other_arms_unaffected_by_ontology(self, world):
        arm = ArmConfig("t", ("topic",))
        a = FeedSimulator(world, num_users=100, seed=1,
                          ontology=degraded_ontology(world)).simulate_arm(arm)
        b = FeedSimulator(world, num_users=100, seed=1).simulate_arm(arm)
        assert [(r.impressions, r.clicks) for r in a] == [
            (r.impressions, r.clicks) for r in b
        ]
