"""Tests for repro.text.pos."""

import pytest

from repro.text.pos import POS_TAGS, PosTagger


@pytest.fixture
def tagger():
    return PosTagger()


class TestTagWord:
    def test_determiner(self, tagger):
        assert tagger.tag_word("the") == "DET"

    def test_pronoun(self, tagger):
        assert tagger.tag_word("what") == "PRON"

    def test_adposition(self, tagger):
        assert tagger.tag_word("of") == "ADP"

    def test_verb(self, tagger):
        assert tagger.tag_word("wins") == "VERB"

    def test_number(self, tagger):
        assert tagger.tag_word("5") == "NUM"

    def test_punct(self, tagger):
        assert tagger.tag_word("?") == "PUNCT"

    def test_adverb_suffix(self, tagger):
        assert tagger.tag_word("quickly") == "ADV"

    def test_adjective_suffix(self, tagger):
        assert tagger.tag_word("fabulous") == "ADJ"

    def test_default_noun(self, tagger):
        assert tagger.tag_word("zorblat") == "NOUN"

    def test_empty_token(self, tagger):
        assert tagger.tag_word("") == "X"


class TestRegistration:
    def test_register_proper_noun(self, tagger):
        tagger.register_proper_nouns(["hayao miyazaki"])
        assert tagger.tag_word("hayao") == "PROPN"
        assert tagger.tag_word("miyazaki") == "PROPN"

    def test_register_does_not_override_existing(self, tagger):
        tagger.register_proper_nouns(["the beatles"])
        # "the" keeps its DET entry (setdefault semantics).
        assert tagger.tag_word("the") == "DET"

    def test_register_explicit_tag(self, tagger):
        tagger.register("blorp", "VERB")
        assert tagger.tag_word("blorp") == "VERB"

    def test_register_invalid_tag_raises(self, tagger):
        with pytest.raises(ValueError):
            tagger.register("x", "NOT_A_TAG")


class TestTagSequence:
    def test_sequence_length(self, tagger):
        tokens = ["the", "best", "cars"]
        assert len(tagger.tag(tokens)) == 3

    def test_all_tags_valid(self, tagger):
        tags = tagger.tag(["what", "are", "the", "famous", "films", "?"])
        assert all(t in POS_TAGS for t in tags)

    def test_past_participle_after_det_becomes_adj(self, tagger):
        tagger.register("animated", "VERB")
        tags = tagger.tag(["the", "animated", "films"])
        assert tags[1] == "ADJ"
