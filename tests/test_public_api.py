"""Public-API sanity: exports exist, examples compile, docstrings present."""

import importlib
import pathlib
import py_compile

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.core.linking",
    "repro.graph",
    "repro.tsp",
    "repro.nn",
    "repro.text",
    "repro.synth",
    "repro.datasets",
    "repro.apps",
    "repro.serving",
    "repro.cluster",
    "repro.replication",
    "repro.obs",
    "repro.baselines",
    "repro.eval",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_package_has_docstring(package):
    module = importlib.import_module(package)
    assert module.__doc__ and module.__doc__.strip()


def _repo_root() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parent.parent


@pytest.mark.parametrize("example", sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
), ids=lambda p: p.name)
def test_examples_compile(example):
    py_compile.compile(str(example), doraise=True)


def test_public_modules_have_docstrings():
    src = _repo_root() / "src" / "repro"
    missing = []
    for path in src.rglob("*.py"):
        text = path.read_text()
        stripped = text.lstrip()
        if not (stripped.startswith('"""') or stripped.startswith("'''")):
            missing.append(str(path.relative_to(src)))
    assert not missing, f"modules without docstrings: {missing}"


def test_version_string():
    import repro

    assert repro.__version__ == "1.0.0"
