"""Tests for repro.cli and repro.config."""

import numpy as np
import pytest

from repro.cli import main
from repro.config import (
    GCTSPConfig,
    GiantConfig,
    LinkingConfig,
    MiningConfig,
    make_rng,
)
from repro.errors import ConfigError


class TestMakeRng:
    def test_from_seed_deterministic(self):
        assert make_rng(3).random() == make_rng(3).random()

    def test_passthrough_generator(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_bad_type_raises(self):
        with pytest.raises(ConfigError):
            make_rng("nope")


class TestConfigValidation:
    def test_defaults_valid(self):
        GiantConfig().validate()

    def test_bad_visit_threshold(self):
        with pytest.raises(ConfigError):
            MiningConfig(visit_threshold=0.0).validate()

    def test_bad_event_lengths(self):
        with pytest.raises(ConfigError):
            MiningConfig(event_min_len=10, event_max_len=5).validate()

    def test_bad_walk_steps(self):
        with pytest.raises(ConfigError):
            MiningConfig(walk_steps=0).validate()

    def test_bad_category_threshold(self):
        with pytest.raises(ConfigError):
            LinkingConfig(category_threshold=0.0).validate()

    def test_bad_embedding_dim(self):
        with pytest.raises(ConfigError):
            LinkingConfig(embedding_dim=1).validate()

    def test_bad_gctsp_layers(self):
        with pytest.raises(ConfigError):
            GCTSPConfig(num_layers=0).validate()

    def test_bad_gctsp_bases(self):
        with pytest.raises(ConfigError):
            GCTSPConfig(num_bases=0).validate()


class TestCli:
    @pytest.fixture(scope="class")
    def built(self, tmp_path_factory):
        """One CLI build emitting both the ontology JSON and a delta
        log (with a snapshot compacted at the tiny threshold)."""
        root = tmp_path_factory.mktemp("cli")
        path = root / "onto.json"
        log_dir = root / "delta-log"
        rc = main(["build", "--days", "2", "--out", str(path),
                   "--log-dir", str(log_dir), "--compact-bytes", "1"])
        assert rc == 0
        return str(path), str(log_dir)

    @pytest.fixture(scope="class")
    def ontology_path(self, built):
        return built[0]

    @pytest.fixture(scope="class")
    def log_dir(self, built):
        return built[1]

    def test_build_writes_file(self, ontology_path):
        import json
        import pathlib

        data = json.loads(pathlib.Path(ontology_path).read_text())
        assert data["nodes"]

    def test_stats(self, ontology_path, capsys):
        assert main(["stats", "--ontology", ontology_path]) == 0
        out = capsys.readouterr().out
        assert "concept" in out and "isA" in out

    def test_query(self, ontology_path, capsys):
        rc = main(["query", "--ontology", ontology_path,
                   "--q", "best fuel efficient cars"])
        assert rc == 0
        assert "concepts" in capsys.readouterr().out

    def test_tag(self, ontology_path, capsys):
        rc = main(["tag", "--ontology", ontology_path,
                   "--title", "honda civic and toyota corolla reviewed",
                   "--body", "the honda civic stands out. toyota corolla too."])
        assert rc == 0
        assert "concepts" in capsys.readouterr().out

    def test_showcase(self, ontology_path, capsys):
        assert main(["showcase", "--ontology", ontology_path]) == 0
        assert "concepts" in capsys.readouterr().out

    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_build_wrote_delta_log_with_snapshot(self, log_dir, capsys):
        import json
        import pathlib

        log_path = pathlib.Path(log_dir)
        manifest = json.loads((log_path / "MANIFEST.json").read_text())
        assert manifest["segments"]
        catalog = json.loads(
            (log_path / "snapshots" / "CATALOG.json").read_text())
        assert catalog["snapshots"]  # --compact-bytes 1 forced a fold

    def test_serve_from_log_compares_clean(self, log_dir, capsys):
        rc = main(["serve", "--from-log", log_dir, "--shards", "2",
                   "--compare"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bootstrapped store" in out
        assert "identical to single store" in out

    def test_serve_remote_shards_from_log(self, log_dir, capsys):
        rc = main(["serve", "--from-log", log_dir, "--remote-shards", "2",
                   "--compare"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 remote worker shards" in out
        assert "identical to single store" in out

    def test_serve_requires_exactly_one_source(self, log_dir,
                                               ontology_path, capsys):
        assert main(["serve"]) == 2
        assert main(["serve", "--ontology", ontology_path,
                     "--from-log", log_dir]) == 2
        err = capsys.readouterr().err
        assert "exactly one" in err

    def test_serve_remote_requires_from_log(self, ontology_path, capsys):
        rc = main(["serve", "--ontology", ontology_path,
                   "--remote-shards", "2"])
        assert rc == 2
        assert "--from-log" in capsys.readouterr().err

    @pytest.mark.parametrize("listen", [
        "8750",             # missing HOST:
        "127.0.0.1:",       # missing port
        "127.0.0.1:nope",   # non-numeric port
        "127.0.0.1:99999",  # port out of range
        "127.0.0.1:²",      # isdigit()-true but not an int literal
    ])
    def test_serve_malformed_listen_fails_before_loading(self, capsys,
                                                         listen):
        # A bad --listen must fail fast: the ontology path here does not
        # even exist, so reaching the load would raise instead of
        # returning the usage error.
        rc = main(["serve", "--ontology", "does-not-exist.json",
                   "--listen", listen])
        assert rc == 2
        assert "HOST:PORT" in capsys.readouterr().err
