"""Tests for repro.obs: registry/histogram math, tracing, and the
end-to-end trace propagation across the serving fabric (DESIGN.md §12).

The cross-process test drives a real ``cli serve --remote-shards 4
--listen --trace-dir`` subprocess and asserts one traced request yields
a single connected span tree spanning three process boundaries (client
-> server -> shard workers) while the byte-identity oracle still holds.
"""

import asyncio
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import threading

import pytest

from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.core.store import OntologyStore
from repro.errors import ReproError
from repro.obs import (
    MetricsRegistry,
    TraceContext,
    Tracer,
    configure_tracer,
    current_context,
    get_registry,
    get_tracer,
    load_spans,
    pop_context,
    push_context,
    write_chrome_trace,
)
from repro.obs.metrics import _GROWTH
from repro.replication import DeltaLog, SnapshotCatalog
from repro.serving import (AsyncOntologyService, OntologyService,
                           RpcClient, RpcServer)
from repro.serving.rpc import dumps
from repro.text.ner import NerTagger
from repro.text.tokenizer import tokenize

ASYNC_TEST_TIMEOUT = 60.0


def run_async(coro, timeout: float = ASYNC_TEST_TIMEOUT):
    """Run ``coro`` under the per-test timeout guard (no hung loops)."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


class FakeClock:
    """Deterministic injectable clock for registry/tracer tests."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def tracer_sandbox():
    """Restore the process-wide tracer to its disabled default after a
    test that calls configure_tracer."""
    yield
    configure_tracer(None)


# ----------------------------------------------------------------------
# Histogram bucket / percentile math
# ----------------------------------------------------------------------
class TestHistogram:
    def _histogram(self, base: float = 1e-6):
        return MetricsRegistry().histogram("h", base=base)

    def test_empty_state_is_zero(self):
        h = self._histogram()
        assert h.count == 0
        assert h.min == 0.0 and h.max == 0.0
        assert h.percentile(0.5) == 0.0
        assert h.state == {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                           "avg": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_constant_stream_reads_back_exactly(self):
        """Every quantile of a constant stream is the constant itself:
        the bucket upper bound is clamped to the observed [min, max]."""
        h = self._histogram()
        for _ in range(50):
            h.observe(0.123)
        state = h.state
        assert state["count"] == 50
        assert state["min"] == state["max"] == 0.123
        assert state["avg"] == pytest.approx(0.123)
        for q in (0.01, 0.5, 0.95, 0.99, 1.0):
            assert h.percentile(q) == 0.123

    def test_percentiles_bounded_by_min_and_max(self):
        h = self._histogram()
        values = [0.0001 * (i + 1) for i in range(100)]
        for value in values:
            h.observe(value)
        for q in (0.05, 0.5, 0.9, 0.95, 0.99, 1.0):
            p = h.percentile(q)
            assert min(values) <= p <= max(values)
        assert h.percentile(1.0) == max(values)

    def test_percentile_within_one_bucket_of_true_value(self):
        """Log bucketing (~19% width): the reported quantile is never
        below the true value and at most one growth factor above it."""
        h = self._histogram()
        for _ in range(90):
            h.observe(0.001)
        for _ in range(10):
            h.observe(1.0)
        p50 = h.percentile(0.50)
        assert 0.001 <= p50 <= 0.001 * _GROWTH
        # rank(0.99) = 99 > 90 small observations -> the tail bucket,
        # clamped to the exact observed max.
        assert h.percentile(0.99) == 1.0

    def test_count_valued_histogram_base_one(self):
        """Batch-size histograms use base=1.0 so tiny integer counts
        don't all collapse into one microsecond-scale bucket."""
        h = self._histogram(base=1.0)
        for size in (1, 2, 4, 8):
            h.observe(size)
        assert h.min == 1.0 and h.max == 8.0
        p50 = h.percentile(0.5)
        # Within one bucket (<19%) of the true median (2), allowing for
        # float error in the bucket bound (growth**4 = 1.9999999...).
        assert 2.0 / _GROWTH <= p50 <= 2.0 * _GROWTH

    def test_huge_observation_clamps_to_overflow_bucket(self):
        """An absurd value lands in the overflow bucket, but min/max
        (and the clamped percentiles) stay exact."""
        h = self._histogram()
        h.observe(1e30)
        assert h.max == 1e30
        assert h.percentile(0.5) == 1e30

    def test_sum_and_avg_exact(self):
        h = self._histogram()
        for value in (0.25, 0.5, 0.25):
            h.observe(value)
        state = h.state
        assert state["sum"] == pytest.approx(1.0)
        assert state["avg"] == pytest.approx(1.0 / 3.0)

    def test_non_positive_base_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ReproError):
            registry.histogram("bad", base=0.0)


# ----------------------------------------------------------------------
# MetricsRegistry / Scope
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_and_gauge_roundtrip(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        gauge = registry.gauge("depth")
        gauge.set(3.0)
        gauge.add(-1.0)
        assert gauge.value == 2.0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.histogram("h", base=1.0) is registry.histogram("h")

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ReproError):
            registry.gauge("name")
        with pytest.raises(ReproError):
            registry.histogram("name")

    def test_time_contextmanager_with_fake_clock(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        with registry.time("op_seconds"):
            clock.advance(0.25)
        h = registry.histogram("op_seconds")
        assert h.count == 1
        assert h.min == h.max == 0.25
        assert h.percentile(0.5) == 0.25

    def test_time_observes_on_error(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        with pytest.raises(ValueError):
            with registry.time("boom_seconds"):
                clock.advance(1.5)
                raise ValueError("failures have latency too")
        assert registry.histogram("boom_seconds").max == 1.5

    def test_snapshot_sorted_and_json_encodable(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.counter("z").inc()
        registry.gauge("a").set(1.5)
        with registry.time("m"):
            pass
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["z"] == 1
        assert snap["a"] == 1.5
        assert snap["m"]["count"] == 1
        json.dumps(snap)  # the obs_status RPC payload must encode

    def test_scope_auto_suffix_per_instance(self):
        registry = MetricsRegistry()
        first = registry.scope("serving")
        second = registry.scope("serving")
        assert first.prefix == "serving"
        assert second.prefix == "serving.2"
        first.counter("requests").inc()
        second.counter("requests").inc(2)
        snap = registry.snapshot()
        assert snap["serving.requests"] == 1
        assert snap["serving.2.requests"] == 2

    def test_scope_snapshot_strips_prefix(self):
        registry = MetricsRegistry()
        scope = registry.scope("cache")
        scope.counter("hits").inc(3)
        child = scope.scope("inner")
        child.counter("misses").inc()
        registry.counter("unrelated").inc()
        snap = scope.snapshot()
        assert snap == {"hits": 3, "inner.misses": 1}

    def test_get_registry_is_process_singleton(self):
        assert get_registry() is get_registry()


# ----------------------------------------------------------------------
# Tracer / TraceContext
# ----------------------------------------------------------------------
class TestTracing:
    def test_disabled_tracer_fast_path_yields_none(self, tmp_path):
        tracer = Tracer(None, process="p")
        with tracer.span("op") as span:
            assert span is None
        assert tracer.spans_written == 0
        assert list(tmp_path.iterdir()) == []

    def test_disabled_tracer_still_propagates_parent(self):
        """A process with no trace dir must still mint child contexts so
        downstream tracing processes log a connected tree."""
        tracer = Tracer(None, process="p")
        parent = TraceContext("t1", "root:1")
        with tracer.span("op", parent=parent) as span:
            assert span is not None
            assert span.ctx.trace_id == "t1"
            assert span.ctx.span_id != "root:1"
            assert current_context() is span.ctx
        assert tracer.spans_written == 0

    def test_enabled_spans_written_with_parent_links(self, tmp_path):
        clock = FakeClock(now=10.0)
        tracer = Tracer(str(tmp_path), process="unit", clock=clock)
        with tracer.span("outer", depth=1) as outer:
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(0.5)
                assert inner.ctx.trace_id == outer.ctx.trace_id
        tracer.close()
        spans = load_spans(str(tmp_path))
        assert [s["name"] for s in spans] == ["inner", "outer"]
        inner_rec, outer_rec = spans
        assert inner_rec["parent"] == outer_rec["span"]
        assert outer_rec["parent"] is None
        assert outer_rec["ts"] == 10.0 and outer_rec["dur"] == 1.5
        assert inner_rec["ts"] == 11.0 and inner_rec["dur"] == 0.5
        assert outer_rec["attrs"] == {"depth": 1}
        assert outer_rec["process"] == "unit"

    def test_span_set_attaches_attributes(self, tmp_path):
        tracer = Tracer(str(tmp_path), process="unit", clock=FakeClock())
        with tracer.span("scatter") as span:
            span.set(straggler=3)
        tracer.close()
        [record] = load_spans(str(tmp_path))
        assert record["attrs"] == {"straggler": 3}

    def test_context_to_wire_roundtrip(self):
        ctx = TraceContext("t-abc", "p:7")
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    @pytest.mark.parametrize("payload", [
        None, "nope", 7, [], {}, {"tid": "t"}, {"sid": "s"},
        {"tid": 1, "sid": "s"}, {"tid": "t", "sid": None},
    ])
    def test_malformed_wire_context_treated_as_absent(self, payload):
        assert TraceContext.from_wire(payload) is None

    def test_push_pop_context(self):
        assert current_context() is None
        ctx = TraceContext("t", "s")
        token = push_context(ctx)
        assert current_context() is ctx
        pop_context(token)
        assert current_context() is None

    def test_configure_tracer_replaces_global(self, tmp_path,
                                              tracer_sandbox):
        tracer = configure_tracer(str(tmp_path), process="cfg")
        assert get_tracer() is tracer
        assert get_tracer().enabled
        disabled = configure_tracer(None)
        assert get_tracer() is disabled
        assert not get_tracer().enabled

    def test_chrome_trace_export(self, tmp_path):
        clock = FakeClock(now=2.0)
        tracer = Tracer(str(tmp_path), process="exp", clock=clock)
        with tracer.span("a"):
            clock.advance(0.001)
            with tracer.span("b"):
                clock.advance(0.002)
        tracer.close()
        out = tmp_path / "chrome.json"
        assert write_chrome_trace(str(tmp_path), str(out)) == 2
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert [e["args"]["name"] for e in meta] == ["exp"]
        assert {e["name"] for e in complete} == {"a", "b"}
        [b_event] = [e for e in complete if e["name"] == "b"]
        assert b_event["ts"] == pytest.approx(2.001e6)
        assert b_event["dur"] == pytest.approx(2000.0)


# ----------------------------------------------------------------------
# serving fixtures (mirrors test_serving_aio)
# ----------------------------------------------------------------------
@pytest.fixture
def small_ontology():
    onto = AttentionOntology()
    concept = onto.add_node(
        NodeType.CONCEPT, "marvel superhero movies",
        payload={"context_titles": [tokenize("best marvel superhero movies")]},
    )
    for name in ("iron man", "captain america", "black panther"):
        entity = onto.add_node(NodeType.ENTITY, name)
        onto.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
    onto.add_node(NodeType.EVENT,
                  "black panther premiere breaks box office record")
    return onto


@pytest.fixture
def ner():
    t = NerTagger()
    for name in ("iron man", "captain america", "black panther"):
        t.register(name, "WORK")
    return t


@pytest.fixture
def sync_service(small_ontology, ner):
    return OntologyService(
        small_ontology, ner=ner,
        tagger_options={"coherence_threshold": 0.01, "lcs_threshold": 0.6},
    )


def make_docs(n=4):
    return [
        (f"d{i}", tokenize("iron man and captain america reviewed"),
         [tokenize("both iron man and captain america delight fans")])
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# torn-read regression: stats is one consistent cut (issue satellite 2)
# ----------------------------------------------------------------------
class TestStatsConsistency:
    def test_stats_not_torn_under_concurrent_traffic(self, sync_service):
        """Both stats halves are gathered on the serialized worker
        thread, so the k-th sequential stats call (0-based) must satisfy
        ``async.items == documents_tagged + k`` *exactly*: batcher items
        count tagged documents plus the k prior stats singletons, and no
        tag batch can land between the two reads.  The old code read the
        batcher's counters later on the event loop, so a batch flushed
        in between produced a torn (mismatched) pair."""

        async def main():
            running = {"on": True}
            async with AsyncOntologyService(
                    sync_service, max_delay=0.001,
                    registry=MetricsRegistry()) as service:

                async def tag_stream():
                    while running["on"]:
                        await service.tag_documents(make_docs(2))

                tasks = [asyncio.ensure_future(tag_stream())
                         for _ in range(3)]
                try:
                    observed = []
                    for k in range(8):
                        stats = await service.stats()
                        observed.append(
                            (k, stats["documents_tagged"],
                             stats["async"]["items"]))
                    return observed
                finally:
                    running["on"] = False
                    await asyncio.gather(*tasks)

        for k, tagged, items in run_async(main()):
            assert items == tagged + k, \
                f"torn stats read at call {k}: items={items} tagged={tagged}"

    def test_stats_legacy_shape_preserved(self, sync_service):
        """The unified registry still renders the historical dict shape
        (satellite 1): sync backend keys plus the batcher's view."""

        async def main():
            async with AsyncOntologyService(
                    sync_service, registry=MetricsRegistry()) as service:
                await service.tag_documents(make_docs(2))
                return await service.stats()

        stats = run_async(main())
        assert stats["documents_tagged"] == 2
        for key in ("queries_interpreted", "deltas_applied", "cache",
                    "ontology"):
            assert key in stats
        assert set(stats["async"]) == {
            "requests", "batches", "items", "max_batch_items",
            "size_flushes", "deadline_flushes"}
        assert stats["async"]["items"] >= 2


# ----------------------------------------------------------------------
# single-process span tree + registry coverage over real RPC
# ----------------------------------------------------------------------
class TestSingleProcessTraceAndMetrics:
    def test_rpc_request_yields_connected_span_tree(self, sync_service,
                                                    tmp_path,
                                                    tracer_sandbox):
        """client span -> server span -> batch span, one trace, written
        with exact fake-clock timestamps."""
        clock = FakeClock(now=500.0)
        configure_tracer(str(tmp_path / "trace"), process="solo",
                         clock=clock)
        registry = MetricsRegistry()

        async def main():
            async with AsyncOntologyService(
                    sync_service, registry=registry) as service:
                server = RpcServer(service, registry=registry)
                host, port = await server.start()
                try:
                    client = await RpcClient.connect(host, port,
                                                     registry=registry)
                    try:
                        return await client.call("tag_documents",
                                                 make_docs(2))
                    finally:
                        await client.close()
                finally:
                    await server.close()

        tagged = run_async(main())
        expected = sync_service.tag_documents(make_docs(2))
        assert dumps(tagged) == dumps(expected)  # tracing changes nothing

        get_tracer().close()
        spans = load_spans(str(tmp_path / "trace"))
        by_name = {span["name"]: span for span in spans}
        client_span = by_name["rpc.client.tag_documents"]
        server_span = by_name["rpc.server.tag_documents"]
        batch_span = by_name["batch.tag"]
        assert client_span["parent"] is None
        assert server_span["parent"] == client_span["span"]
        assert batch_span["parent"] == server_span["span"]
        assert len({span["trace"] for span in
                    (client_span, server_span, batch_span)}) == 1
        assert batch_span["attrs"]["items"] == 2
        # Never-advancing clock: deterministic timestamps throughout.
        assert all(span["ts"] == 500.0 and span["dur"] == 0.0
                   for span in spans)

    def test_registry_covers_rpc_batcher_and_cache_paths(self,
                                                         sync_service):
        """One shared registry, non-zero latency histograms for every
        instrumented tier the request touched (acceptance gate)."""
        registry = MetricsRegistry()

        async def main():
            async with AsyncOntologyService(
                    sync_service, registry=registry) as service:
                server = RpcServer(service, registry=registry)
                host, port = await server.start()
                try:
                    client = await RpcClient.connect(host, port,
                                                     registry=registry)
                    try:
                        await client.call("tag_documents", make_docs(2))
                        await client.call("concepts_of_entity", "iron man")
                        await client.call("concepts_of_entity", "iron man")
                        return await client.call("obs_status")
                    finally:
                        await client.close()
                finally:
                    await server.close()

        status = run_async(main())
        metrics = status["metrics"]
        for name in ("rpc.server.method.tag_documents.seconds",
                     "rpc.client.method.tag_documents.seconds",
                     "aio.batcher.execute_seconds",
                     "aio.batcher.queue_wait_seconds"):
            assert metrics[name]["count"] >= 1, name
            assert metrics[name]["max"] >= 0.0
        assert metrics["rpc.server.frames_in"] >= 4
        # The snapshot is taken while serving obs_status itself — the
        # one in-flight request is visible in its own readout.
        assert metrics["rpc.server.inflight"] == 1
        assert metrics["aio.batcher.batch_items"]["max"] >= 2
        assert status["tracer"]["enabled"] is False
        # The maintained-view catalog surfaces its headline counters in
        # the same payload (`cli stats --connect` prints this section).
        views = status["views"]
        assert views["views"] == 3 and not views["stale"]
        assert "maintain_p95" in views and "deltas_folded" in views
        # The sync backend writes through its own "serving" scope (the
        # fixture built it on the global registry); cache endpoint
        # counters and latency histograms are non-zero after the calls.
        backend = sync_service.metrics.snapshot()
        assert backend["cache.endpoint.concepts_of_entity.misses"] == 1
        assert backend["cache.endpoint.concepts_of_entity.hits"] == 1
        assert backend["cache.miss_compute_seconds"]["count"] >= 1
        assert backend["tag_seconds"]["count"] >= 1
        assert sync_service.stats()["cache"]["hits"] >= 1


# ----------------------------------------------------------------------
# cross-process: traced request through serve --remote-shards 4
# ----------------------------------------------------------------------
def _seed_log(log_dir):
    """A small ontology delta log + snapshot catalog on disk (the same
    substrate the consistency suite uses)."""
    producer = AttentionOntology()
    producer.begin_delta("build")
    concept = producer.add_node(NodeType.CONCEPT, "marvel movies")
    for name in ("iron man", "thor", "hulk", "black widow", "wasp"):
        entity = producer.add_node(NodeType.ENTITY, name)
        producer.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
    producer.add_alias(concept.node_id, "mcu films")
    delta = producer.commit_delta()
    with DeltaLog(log_dir, segment_max_bytes=512) as log:
        log.append(delta)
        catalog = SnapshotCatalog(log, compact_bytes=1, retain_segments=0)
        catalog.record(OntologyStore.bootstrap(None, [delta]))
    ner = NerTagger()
    for name in ("iron man", "thor", "hulk", "black widow", "wasp"):
        ner.register(name, "WORK")
    return producer, ner


class _ServeProcess:
    """`cli serve --listen` in a subprocess; parses the bound address."""

    PATTERN = re.compile(r"RPC serving on ([0-9.]+):(\d+)")

    def __init__(self, args, env):
        self.proc = subprocess.Popen(
            args, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        self.lines = []
        self.address = None
        self._bound = threading.Event()
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()

    def _drain(self):
        for line in self.proc.stdout:
            self.lines.append(line)
            match = self.PATTERN.search(line)
            if match:
                self.address = (match.group(1), int(match.group(2)))
                self._bound.set()
        self._bound.set()  # EOF: unblock the waiter (startup failed)

    def wait_bound(self, timeout=120.0):
        if not self._bound.wait(timeout) or self.address is None:
            raise AssertionError(
                "serve subprocess never bound:\n" + "".join(self.lines))
        return self.address

    def shutdown(self):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGINT)
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)
        self._reader.join(timeout=10)


class TestCrossProcessTracePropagation:
    QUERIES = ["best marvel movies", "thor review"]

    def test_traced_request_spans_three_process_boundaries(
            self, tmp_path, tracer_sandbox):
        """One traced request through ``cli serve --remote-shards 4``
        produces a single connected span tree covering the client, the
        serving process, and all four spawned shard workers — while the
        RPC answer stays byte-identical to a single store and the
        server's registry reports non-zero latency histograms for the
        rpc, batcher and scatter paths."""
        log_dir = tmp_path / "log"
        trace_dir = tmp_path / "trace"
        producer, ner = _seed_log(log_dir)

        repo = pathlib.Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        env.pop("REPRO_TRACE_DIR", None)  # only --trace-dir should set it
        serve = _ServeProcess([
            sys.executable, "-u", "-m", "repro.cli", "serve",
            "--from-log", str(log_dir), "--remote-shards", "4",
            "--listen", "127.0.0.1:0", "--trace-dir", str(trace_dir),
            "--threshold", "0.01", "--q", "warm up",
        ], env)
        try:
            host, port = serve.wait_bound()
            configure_tracer(str(trace_dir), process="client")

            async def drive():
                client = await RpcClient.connect(
                    host, port, registry=MetricsRegistry())
                try:
                    analyses = await client.call("interpret_queries",
                                                 self.QUERIES)
                    status = await client.call("obs_status")
                    return analyses, status
                finally:
                    await client.close()

            analyses, status = run_async(drive(), timeout=120.0)
        finally:
            serve.shutdown()
        get_tracer().close()

        # Byte identity holds with tracing enabled end to end (the serve
        # process used --threshold 0.01 and no lcs override).
        single = OntologyService(producer, ner=ner,
                                 tagger_options={"coherence_threshold": 0.01})
        assert dumps(analyses) == dumps(single.interpret_queries(self.QUERIES))

        # The server's registry snapshot covers every instrumented tier.
        metrics = status["metrics"]
        for name in ("rpc.server.method.interpret_queries.seconds",
                     "aio.batcher.execute_seconds",
                     "scatter.fanout_seconds",
                     "scatter.shard_seconds"):
            assert metrics[name]["count"] >= 1, name
            assert metrics[name]["max"] > 0.0, name
        assert status["tracer"]["enabled"] is True
        assert status["tracer"]["process"] == "serve"
        assert status["tracer"]["spans_written"] >= 1
        shards = status["backend"]["shards"]
        assert len(shards) == 4
        for shard in shards:
            assert shard["metrics"]["shard_worker.requests"] >= 1
            assert shard["metrics"][
                "shard_worker.request_seconds"]["count"] >= 1
            assert shard["tracer"]["enabled"] is True

        # One connected span tree across client / serve / shard-0..3.
        spans = load_spans(str(trace_dir))
        [client_span] = [s for s in spans
                         if s["name"] == "rpc.client.interpret_queries"]
        tree = [s for s in spans if s["trace"] == client_span["trace"]]
        ids = {s["span"] for s in tree}
        roots = [s for s in tree if s["parent"] is None]
        assert roots == [client_span]
        for span in tree:
            if span["parent"] is not None:
                assert span["parent"] in ids, \
                    f"orphan span {span['name']} in {span['process']}"
        assert {s["process"] for s in tree} == {
            "client", "serve", "shard-0", "shard-1", "shard-2", "shard-3"}
        names = {s["name"] for s in tree}
        assert {"rpc.client.interpret_queries",
                "rpc.server.interpret_queries", "batch.query"} <= names
        assert any(name.startswith("scatter.") for name in names)
        assert any(name.startswith("shard.") for name in names)
        # Parent-edge shape: server under client, batch under server.
        by_name = {}
        for span in tree:
            by_name.setdefault(span["name"], span)
        assert by_name["rpc.server.interpret_queries"]["parent"] == \
            client_span["span"]
        assert by_name["batch.query"]["parent"] == \
            by_name["rpc.server.interpret_queries"]["span"]

        # The merged timeline exports to a Chrome-loadable trace file.
        out = tmp_path / "chrome.json"
        assert write_chrome_trace(str(trace_dir), str(out)) == len(spans)
        assert json.loads(out.read_text())["traceEvents"]
