"""Tests for repro.core.linking.*"""

import numpy as np
import pytest

from repro.config import LinkingConfig
from repro.core.linking.attentions import link_attention_isa, link_concept_topic_involve
from repro.core.linking.categories import category_distribution, link_attention_categories
from repro.core.linking.concept_entity import (
    ConceptEntityClassifier,
    ConceptEntityExample,
    build_concept_entity_dataset,
)
from repro.core.linking.entity_entity import EntityEmbeddingTrainer, mine_cooccurrence_pairs
from repro.core.linking.key_elements import recognize_key_elements
from repro.core.gctsp import prepare_example
from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.text.ner import NerTagger


class TestCategories:
    def test_distribution_normalised(self):
        dist = category_distribution({"a": 3.0, "b": 1.0})
        assert dist["a"] == pytest.approx(0.75)

    def test_edges_above_threshold_only(self):
        onto = AttentionOntology()
        onto.add_node(NodeType.CONCEPT, "economy cars")
        created = link_attention_categories(
            onto, {"economy cars": {"cars": 0.8, "film": 0.2}}, threshold=0.3
        )
        assert created == 1
        cat = onto.find(NodeType.CATEGORY, "cars")
        concept = onto.find(NodeType.CONCEPT, "economy cars")
        assert onto.has_edge(cat.node_id, concept.node_id, EdgeType.ISA)
        assert onto.find(NodeType.CATEGORY, "film") is None

    def test_unknown_attention_skipped(self):
        onto = AttentionOntology()
        assert link_attention_categories(onto, {"ghost": {"cars": 1.0}}) == 0


class TestAttentionIsa:
    def test_suffix_concepts_linked(self):
        onto = AttentionOntology()
        parent = onto.add_node(NodeType.CONCEPT, "animated films")
        child = onto.add_node(NodeType.CONCEPT, "famous animated films")
        created = link_attention_isa(onto)
        assert created >= 1
        assert onto.has_edge(parent.node_id, child.node_id, EdgeType.ISA)

    def test_topic_event_subsequence_linked(self):
        onto = AttentionOntology()
        topic = onto.add_node(NodeType.TOPIC, "have a concert")
        event = onto.add_node(NodeType.EVENT, "jay chou will have a concert")
        link_attention_isa(onto)
        assert onto.has_edge(topic.node_id, event.node_id, EdgeType.ISA)

    def test_topic_child_events_payload_linked(self):
        onto = AttentionOntology()
        topic = onto.add_node(
            NodeType.TOPIC, "pop singers will have a concert",
            payload={"pattern": ("X", "will", "have", "a", "concert"),
                     "concept": ("pop", "singers"),
                     "events": (("jay", "chou", "will", "have", "a", "concert"),)},
        )
        event = onto.add_node(NodeType.EVENT, "jay chou will have a concert")
        link_attention_isa(onto)
        assert onto.has_edge(topic.node_id, event.node_id, EdgeType.ISA)

    def test_concept_contained_in_topic_involve(self):
        onto = AttentionOntology()
        topic = onto.add_node(NodeType.TOPIC, "pop singers will have a concert")
        concept = onto.add_node(NodeType.CONCEPT, "pop singers")
        created = link_concept_topic_involve(onto)
        assert created == 1
        assert onto.has_edge(topic.node_id, concept.node_id, EdgeType.INVOLVE)


class TestConceptEntityDataset:
    def _base(self):
        sessions = [("best economy cars", "honda civic"),
                    ("best economy cars", "honda civic"),
                    ("best economy cars", "ford focus")]
        concept_of_query = {"best economy cars": "economy cars"}
        entities = {"honda civic", "ford focus", "toyota corolla"}
        categories = {"honda civic": "cars", "ford focus": "cars",
                      "toyota corolla": "cars"}
        docs = {"economy cars": [
            ["the", "honda", "civic", "is", "an", "economy", "car"],
            ["ford", "focus", "review"],
        ]}
        return sessions, concept_of_query, entities, categories, docs

    def test_positives_require_session_and_mention(self):
        args = self._base()
        data = build_concept_entity_dataset(*args, seed=0)
        positives = [e for e in data if e.label == 1]
        assert {(e.concept, e.entity) for e in positives} == {
            ("economy cars", "honda civic"), ("economy cars", "ford focus"),
        }

    def test_negatives_same_category(self):
        args = self._base()
        data = build_concept_entity_dataset(*args, negatives_per_positive=1, seed=0)
        negatives = [e for e in data if e.label == 0]
        assert negatives
        assert all(e.entity == "toyota corolla" for e in negatives)

    def test_negative_doc_contains_inserted_entity(self):
        args = self._base()
        data = build_concept_entity_dataset(*args, seed=0)
        for e in data:
            if e.label == 0:
                joined = " ".join(e.doc_tokens)
                assert e.entity in joined

    def test_classifier_learns_dataset(self):
        args = self._base()
        data = build_concept_entity_dataset(*args, negatives_per_positive=2, seed=0)
        clf = ConceptEntityClassifier(n_estimators=10)
        clf.fit(data)
        preds = clf.predict(data)
        labels = np.array([e.label for e in data])
        assert (preds == labels).mean() >= 0.8

    def test_predict_before_fit_raises(self):
        clf = ConceptEntityClassifier()
        with pytest.raises(RuntimeError):
            clf.predict([ConceptEntityExample("c", "e", ["e"], 1)])

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            ConceptEntityClassifier().fit([])


class TestEntityEntity:
    def test_mine_cooccurrence_pairs(self):
        ner = NerTagger()
        ner.register("honda civic", "PROD")
        ner.register("toyota corolla", "PROD")
        texts = ["honda civic vs toyota corolla"] * 3 + ["honda civic alone"]
        pairs = mine_cooccurrence_pairs(texts, ner, min_count=2)
        assert pairs == {("honda civic", "toyota corolla"): 3}

    def test_training_pulls_positives_together(self):
        entities = [f"e{i}" for i in range(10)]
        positives = {("e0", "e1"): 5, ("e2", "e3"): 5}
        trainer = EntityEmbeddingTrainer(entities, LinkingConfig(embedding_dim=8),
                                         seed=0)
        trainer.fit(positives, epochs=60)
        pos_dist = trainer.distance("e0", "e1")
        unrelated = trainer.distance("e0", "e5")
        assert pos_dist < unrelated

    def test_correlated_pairs_threshold(self):
        entities = ["a", "b", "c", "d"]
        trainer = EntityEmbeddingTrainer(entities, LinkingConfig(embedding_dim=4),
                                         seed=1)
        trainer.fit({("a", "b"): 3}, epochs=80)
        close = trainer.correlated_pairs(threshold=trainer.distance("a", "b") + 0.01)
        assert ("a", "b") in [(x, y) for x, y, _d in close]

    def test_unknown_entity_distance_raises(self):
        trainer = EntityEmbeddingTrainer(["a", "b"], seed=0)
        with pytest.raises(KeyError):
            trainer.distance("a", "zzz")

    def test_empty_entities_raises(self):
        with pytest.raises(ValueError):
            EntityEmbeddingTrainer([])

    def test_no_trainable_pairs_raises(self):
        trainer = EntityEmbeddingTrainer(["a", "b"], seed=0)
        with pytest.raises(ValueError):
            trainer.fit({("x", "y"): 3})


class TestKeyElements:
    def test_recognize_groups_consecutive_tokens(self, trained_key_element_model,
                                                 emd_dataset, extractor, parser):
        example_src = emd_dataset[0]
        example = prepare_example(example_src.queries, example_src.titles,
                                  extractor, parser)
        elements = recognize_key_elements(trained_key_element_model, example)
        out = elements.as_dict()
        assert set(out) == {"entity", "trigger", "location"}
        # Multi-token surfaces are space-joined strings.
        for values in out.values():
            assert all(isinstance(v, str) for v in values)
