"""Tests for incremental pipeline growth and model checkpointing."""

import numpy as np
import pytest

from repro import GiantPipeline
from repro.core.gctsp import GCTSPNet
from repro.config import GCTSPConfig
from repro.core.ontology import NodeType
from repro.nn.checkpoint import load_checkpoint, save_checkpoint
from repro.nn.layers import Linear
from repro.synth.querylog import QueryLogGenerator, build_click_graph
from repro.synth.world import WorldConfig, build_world


class TestCheckpoint:
    def test_round_trip_linear(self, tmp_path):
        layer = Linear(3, 2, rng=np.random.default_rng(1))
        path = str(tmp_path / "layer.npz")
        save_checkpoint(layer, path)
        clone = Linear(3, 2, rng=np.random.default_rng(99))
        load_checkpoint(clone, path)
        assert np.allclose(clone.weight.data, layer.weight.data)
        assert np.allclose(clone.bias.data, layer.bias.data)

    def test_round_trip_gctsp(self, tmp_path, cmd_splits, tiny_gctsp_config):
        train, _dev, test, _raw = cmd_splits
        model = GCTSPNet(tiny_gctsp_config)
        model.fit(train[:5], epochs=2)
        path = str(tmp_path / "gctsp.npz")
        save_checkpoint(model, path)
        clone = GCTSPNet(tiny_gctsp_config)
        load_checkpoint(clone, path)
        example = test[0]
        assert np.array_equal(model.predict_labels(example),
                              clone.predict_labels(example))

    def test_shape_mismatch_rejected(self, tmp_path):
        layer = Linear(3, 2)
        path = str(tmp_path / "layer.npz")
        save_checkpoint(layer, path)
        wrong = Linear(4, 2)
        with pytest.raises((ValueError, KeyError)):
            load_checkpoint(wrong, path)


class TestIncrementalPipeline:
    @pytest.fixture(scope="class")
    def setup(self):
        world = build_world(WorldConfig(num_days=3, seed=11))
        gen = QueryLogGenerator(world)
        days = gen.generate_days()
        pos, ner = world.register_text_models()
        categories = sorted({c[2] for c in world.categories})
        return world, days, pos, ner, categories

    def test_extend_grows_ontology(self, setup):
        world, days, pos, ner, categories = setup
        pipe = GiantPipeline(build_click_graph(days[:1]), pos, ner,
                             categories=categories)
        pipe.run(sessions=days[0].sessions)
        before = pipe.ontology.stats()

        growth = pipe.extend(build_click_graph(days[1:2]),
                             sessions=days[1].sessions)
        after = pipe.ontology.stats()
        # Growth deltas must be consistent and non-negative.
        for key, delta in growth.items():
            assert after[key] - before[key] == delta
            assert delta >= 0
        assert growth["concept"] + growth["event"] > 0

    def test_extend_is_stable_on_repeat(self, setup):
        world, days, pos, ner, categories = setup
        pipe = GiantPipeline(build_click_graph(days[:1]), pos, ner,
                             categories=categories)
        pipe.run(sessions=days[0].sessions)
        pipe.extend(build_click_graph(days[1:2]), sessions=days[1].sessions)
        snapshot = pipe.ontology.stats()
        # Extending with the same day again adds no new queries -> node
        # counts stay fixed (linking is idempotent).
        growth = pipe.extend(build_click_graph(days[1:2]))
        assert pipe.ontology.stats()["concept"] == snapshot["concept"]
        assert growth["concept"] == 0

    def test_report_accumulates(self, setup):
        world, days, pos, ner, categories = setup
        pipe = GiantPipeline(build_click_graph(days[:1]), pos, ner,
                             categories=categories)
        pipe.run(sessions=days[0].sessions)
        first = pipe.report.concepts_mined
        pipe.extend(build_click_graph(days[1:3]))
        assert pipe.report.concepts_mined >= first
