"""Tests for repro.text.vectorizer and repro.text.similarity."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.text.similarity import (
    cosine_similarity,
    dict_cosine,
    jaccard,
    longest_common_subsequence,
    tfidf_similarity,
)
from repro.text.vectorizer import TfidfVectorizer


class TestTfidfVectorizer:
    def test_identical_docs_similarity_one(self):
        v = TfidfVectorizer().fit([["a", "b"], ["c", "d"]])
        assert v.similarity(["a", "b"], ["a", "b"]) == pytest.approx(1.0)

    def test_disjoint_docs_similarity_zero(self):
        v = TfidfVectorizer().fit([["a"], ["b"]])
        assert v.similarity(["a"], ["b"]) == pytest.approx(0.0)

    def test_vector_is_unit_norm(self):
        v = TfidfVectorizer().fit([["a", "b", "c"]])
        vec = v.transform(["a", "b", "b"])
        assert math.sqrt(sum(w * w for w in vec.values())) == pytest.approx(1.0)

    def test_rare_word_gets_higher_idf(self):
        corpus = [["common", "rare"]] + [["common"]] * 9
        v = TfidfVectorizer().fit(corpus)
        assert v.idf("rare") > v.idf("common")

    def test_empty_doc_transform(self):
        v = TfidfVectorizer().fit([["a"]])
        assert v.transform([]) == {}

    def test_partial_fit_accumulates(self):
        v = TfidfVectorizer()
        v.partial_fit(["a"])
        v.partial_fit(["b"])
        assert v.num_docs == 2


class TestCosine:
    def test_parallel_vectors(self):
        a = np.array([1.0, 2.0])
        assert cosine_similarity(a, 3 * a) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_zero_vector(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_dict_cosine_identical(self):
        assert dict_cosine({"a": 1.0, "b": 2.0}, {"a": 1.0, "b": 2.0}) == pytest.approx(1.0)

    def test_dict_cosine_empty(self):
        assert dict_cosine({}, {"a": 1.0}) == 0.0


class TestLCS:
    def test_identical(self):
        assert longest_common_subsequence(["a", "b", "c"], ["a", "b", "c"]) == 3

    def test_subsequence_with_gaps(self):
        assert longest_common_subsequence(["a", "c"], ["a", "b", "c"]) == 2

    def test_no_overlap(self):
        assert longest_common_subsequence(["x"], ["y"]) == 0

    def test_empty(self):
        assert longest_common_subsequence([], ["a"]) == 0

    def test_order_matters(self):
        assert longest_common_subsequence(["b", "a"], ["a", "b"]) == 1


class TestJaccardAndTfidfSim:
    def test_jaccard_identical(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_jaccard_empty_both(self):
        assert jaccard(set(), set()) == 0.0

    def test_tfidf_similarity_symmetric(self):
        a, b = ["x", "y", "y"], ["y", "z"]
        assert tfidf_similarity(a, b) == pytest.approx(tfidf_similarity(b, a))

    def test_tfidf_similarity_with_idf_weights(self):
        idf = {"x": 10.0, "y": 0.1}
        # Heavy shared word dominates.
        high = tfidf_similarity(["x", "y"], ["x"], idf)
        low = tfidf_similarity(["x", "y"], ["y"], idf)
        assert high > low


@given(st.lists(st.sampled_from("abcd"), max_size=12),
       st.lists(st.sampled_from("abcd"), max_size=12))
def test_lcs_bounded_and_symmetric(a, b):
    lcs = longest_common_subsequence(a, b)
    assert 0 <= lcs <= min(len(a), len(b))
    assert lcs == longest_common_subsequence(b, a)


@given(st.lists(st.sampled_from("abc"), min_size=1, max_size=10))
def test_lcs_identity(a):
    assert longest_common_subsequence(a, a) == len(a)
