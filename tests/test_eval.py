"""Tests for repro.eval.metrics and repro.eval.reporting."""

import pytest
from hypothesis import given, strategies as st

from repro.eval.metrics import (
    evaluate_phrases,
    exact_match,
    multiclass_f1,
    precision_recall_f1,
    token_f1,
)
from repro.eval.reporting import render_series, render_table


class TestExactMatchAndF1:
    def test_em_exact(self):
        assert exact_match(["a", "b"], ["a", "b"]) == 1.0

    def test_em_order_sensitive(self):
        assert exact_match(["b", "a"], ["a", "b"]) == 0.0

    def test_f1_full_overlap(self):
        assert token_f1(["a", "b"], ["a", "b"]) == 1.0

    def test_f1_partial(self):
        # pred {a,b}, gold {b,c}: overlap 1, p=r=0.5 -> f1=0.5
        assert token_f1(["a", "b"], ["b", "c"]) == pytest.approx(0.5)

    def test_f1_multiset(self):
        assert token_f1(["a", "a"], ["a"]) == pytest.approx(2 / 3)

    def test_f1_empty_cases(self):
        assert token_f1([], []) == 1.0
        assert token_f1(["a"], []) == 0.0
        assert token_f1([], ["a"]) == 0.0


class TestEvaluatePhrases:
    def test_coverage_counts_empties(self):
        scores = evaluate_phrases([["a"], []], [["a"], ["b"]])
        assert scores.coverage == 0.5
        assert scores.em == 1.0  # conditional on non-empty

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            evaluate_phrases([["a"]], [])

    def test_empty_dataset(self):
        scores = evaluate_phrases([], [])
        assert scores.count == 0

    def test_as_row(self):
        scores = evaluate_phrases([["a"]], [["a"]])
        assert scores.as_row() == {"EM": 1.0, "F1": 1.0, "COV": 1.0}


class TestMulticlassF1:
    def test_perfect(self):
        out = multiclass_f1([0, 1, 2], [0, 1, 2], 3)
        assert out["F1-macro"] == 1.0
        assert out["F1-micro"] == 1.0
        assert out["F1-weighted"] == 1.0

    def test_all_wrong(self):
        out = multiclass_f1([0, 0], [1, 1], 2)
        assert out["F1-micro"] == 0.0

    def test_micro_ge_macro_with_imbalance(self):
        # Majority class correct, minority wrong: micro > macro.
        y_true = [0] * 9 + [1]
        y_pred = [0] * 10
        out = multiclass_f1(y_true, y_pred, 2)
        assert out["F1-micro"] > out["F1-macro"]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            multiclass_f1([0], [0, 1], 2)


class TestPrecisionRecallF1:
    def test_perfect_sets(self):
        assert precision_recall_f1({1, 2}, {1, 2}) == (1.0, 1.0, 1.0)

    def test_half_precision(self):
        p, r, f1 = precision_recall_f1({1}, {1, 2})
        assert p == 0.5 and r == 1.0

    def test_empty_pred(self):
        assert precision_recall_f1({1}, set()) == (0.0, 0.0, 0.0)
        assert precision_recall_f1(set(), set()) == (1.0, 1.0, 1.0)


class TestReporting:
    def test_table_contains_rows_and_columns(self):
        out = render_table("Table X", ["EM", "F1"],
                           [("MethodA", {"EM": 0.5, "F1": 0.75})])
        assert "Table X" in out
        assert "MethodA" in out
        assert "0.5000" in out and "0.7500" in out

    def test_table_missing_metric_dash(self):
        out = render_table("T", ["EM"], [("M", {})])
        assert "-" in out

    def test_series_renders_means(self):
        out = render_series("Fig", ["d1", "d2"], {"arm": [1.0, 3.0]})
        assert "mean" in out
        assert "2.00" in out

    def test_series_unit_suffix(self):
        out = render_series("Fig", ["d1"], {"arm": [12.5]}, unit="%")
        assert "12.50%" in out


@given(st.lists(st.sampled_from("abc"), max_size=6),
       st.lists(st.sampled_from("abc"), max_size=6))
def test_token_f1_symmetric_and_bounded(a, b):
    f = token_f1(a, b)
    assert 0.0 <= f <= 1.0
    assert f == pytest.approx(token_f1(b, a))


@given(st.lists(st.sampled_from("abc"), min_size=1, max_size=6))
def test_em_implies_f1_one(a):
    assert token_f1(a, a) == 1.0
    assert exact_match(a, a) == 1.0
