"""Tests for repro.text.stopwords."""

from repro.text.stopwords import STOPWORDS, content_words, is_stopword


class TestIsStopword:
    def test_common_stopwords(self):
        for word in ("the", "a", "of", "is", "what"):
            assert is_stopword(word)

    def test_content_words_pass(self):
        for word in ("cars", "film", "miyazaki", "concert"):
            assert not is_stopword(word)

    def test_punctuation_is_stop(self):
        for mark in (".", ",", "?", "|", "—"):
            assert is_stopword(mark)

    def test_single_nonalnum_char_is_stop(self):
        assert is_stopword("~")


class TestContentWords:
    def test_filters_stopwords(self):
        assert content_words(["the", "best", "cars", "?"]) == ["best", "cars"]

    def test_empty(self):
        assert content_words([]) == []

    def test_all_stop(self):
        assert content_words(["the", "of", "."]) == []

    def test_order_preserved(self):
        assert content_words(["cars", "the", "films"]) == ["cars", "films"]


def test_stopwords_are_lowercase():
    assert all(w == w.lower() for w in STOPWORDS)
