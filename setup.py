"""Package metadata for the GIANT reproduction (src/ layout).

``pip install -e .`` makes ``import repro`` work without PYTHONPATH hacks;
the only runtime dependency is numpy (the nn subpackage is a from-scratch
numpy autograd stack).
"""

from setuptools import find_packages, setup

setup(
    name="repro-giant",
    version="1.0.0",
    description=(
        "Reproduction of GIANT: Scalable Creation of a Web-scale Ontology "
        "(SIGMOD 2020) with an indexed ontology store and serving layer"
    ),
    long_description=(
        "A full reproduction of the GIANT attention-ontology system: "
        "GCTSP-Net phrase mining, ontology construction from click logs, "
        "an indexed OntologyStore with incremental delta updates, and an "
        "online serving layer for document tagging and query understanding."
    ),
    long_description_content_type="text/plain",
    license="MIT",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={"test": ["pytest", "pytest-benchmark"]},
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
