"""Table 5 — concept mining: EM / F1 / COV for eight methods.

Paper numbers (Chinese CMD, 10k examples):

    TextRank     0.1941  0.7356  1.0000
    AutoPhrase   0.0725  0.4839  0.9353
    Match        0.1494  0.3054  0.3639
    Align        0.7016  0.8895  0.9611
    MatchAlign   0.6462  0.8814  0.9700
    Q-LSTM-CRF   0.7171  0.8828  0.9731
    T-LSTM-CRF   0.3106  0.6333  0.9062
    GCTSP-Net    0.7830  0.9576  1.0000

The reproduction checks the *shape*: GCTSP-Net tops EM and F1; Align-family
and Q-LSTM-CRF are competitive; Match has low coverage; TextRank has full
coverage but low EM.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    AlignExtractor,
    AutoPhraseMiner,
    MatchAlignExtractor,
    MatchExtractor,
    QueryLstmCrf,
    TextRankExtractor,
    TitleLstmCrf,
)
from repro.eval import evaluate_phrases
from repro.eval.reporting import render_table

from bench_common import SCALE, prepare, write_result

COLUMNS = ["EM", "F1", "COV"]


@pytest.fixture(scope="module")
def methods(cmd_split, concept_gctsp, bench_extractor, bench_parser):
    train, _dev, _test = cmd_split
    epochs = 10 if SCALE == "full" else 6
    cap = 200 if SCALE == "full" else 80

    textrank = TextRankExtractor(top_k=5)
    autophrase = AutoPhraseMiner(min_count=2, top_k=5)
    autophrase.fit([t for e in train for t in e.queries + e.titles])
    match = MatchExtractor()
    match.bootstrap([q for e in train for q in e.queries])
    align = AlignExtractor()
    matchalign = MatchAlignExtractor()
    matchalign.bootstrap([q for e in train for q in e.queries])
    q_lstm = QueryLstmCrf(embed_dim=32, hidden=25)
    q_lstm.fit_examples(train[:cap], epochs=epochs, lr=0.03)
    t_lstm = TitleLstmCrf(embed_dim=32, hidden=25)
    t_lstm.fit_examples(train[: cap // 2], epochs=max(3, epochs // 2), lr=0.03)

    gctsp_extract = _gctsp_extractor(concept_gctsp, bench_extractor, bench_parser)

    return [
        ("TextRank", textrank.extract),
        ("AutoPhrase", autophrase.extract),
        ("Match", match.extract),
        ("Align", align.extract),
        ("MatchAlign", matchalign.extract),
        ("Q-LSTM-CRF", q_lstm.extract),
        ("T-LSTM-CRF", t_lstm.extract),
        ("GCTSP-Net", gctsp_extract),
    ]


def _gctsp_extractor(model, extractor, parser):
    from repro.core.gctsp import prepare_example

    def extract(queries, titles):
        example = prepare_example(queries, titles, extractor, parser)
        return model.extract_phrase(example)

    return extract


def _evaluate_all(methods, test_examples):
    rows = []
    for name, extract in methods:
        preds = [extract(e.queries, e.titles) for e in test_examples]
        golds = [e.gold_tokens for e in test_examples]
        rows.append((name, evaluate_phrases(preds, golds).as_row()))
    return rows


def test_table5_concept_mining(benchmark, methods, cmd_split):
    _train, _dev, test = cmd_split
    rows = benchmark.pedantic(
        _evaluate_all, args=(methods, test), iterations=1, rounds=1
    )
    table = render_table(
        "Table 5: concept mining on the synthetic CMD (EM / F1 / COV)",
        COLUMNS, rows,
    )
    write_result("table5_concept_mining", table)

    scores = dict(rows)
    # Shape assertions mirroring the paper's ordering (with a small epsilon
    # because the synthetic test split is far smaller than the paper's 1k).
    best_f1 = max(r["F1"] for r in scores.values())
    best_em = max(r["EM"] for r in scores.values())
    assert scores["GCTSP-Net"]["F1"] >= best_f1 - 0.03
    assert scores["GCTSP-Net"]["EM"] >= best_em - 0.1
    assert scores["GCTSP-Net"]["EM"] > scores["TextRank"]["EM"]
    assert scores["GCTSP-Net"]["EM"] > scores["T-LSTM-CRF"]["EM"]
    assert scores["GCTSP-Net"]["COV"] >= 0.95
    assert scores["TextRank"]["COV"] == 1.0
    # Pattern/alignment methods lose on accuracy or on coverage
    # (paper: Match COV 0.36, Align EM 0.70 < GCTSP 0.78).
    assert scores["Match"]["EM"] < scores["GCTSP-Net"]["EM"]
    assert scores["Align"]["COV"] < 1.0
    assert scores["Align"]["F1"] > scores["AutoPhrase"]["F1"]
