"""Tables 3-4 — showcases: mined concepts/events with their categories,
instances, topics, and involved entities.

The paper's Tables 3-4 are qualitative; the bench regenerates the same row
structure from the constructed ontology (e.g. "famous long-distance runner"
with its runner instances; cellphone launch events with their entities).
"""

from __future__ import annotations

import pytest

from repro import GiantPipeline
from repro.core.ontology import EdgeType, NodeType
from repro.synth.querylog import build_click_graph

from bench_common import write_result


@pytest.fixture(scope="module")
def ontology(bench_days, bench_taggers, bench_sessions, bench_world,
             concept_gctsp, key_element_gctsp):
    pos, ner = bench_taggers
    pipe = GiantPipeline(
        build_click_graph(bench_days), pos, ner,
        concept_model=concept_gctsp,
        key_element_model=key_element_gctsp,
        categories=sorted({c[2] for c in bench_world.categories}),
    )
    pipe.run(sessions=bench_sessions)
    return pipe.ontology


def _concept_rows(onto, limit=8):
    rows = []
    for concept in onto.nodes(NodeType.CONCEPT):
        instances = [
            n.phrase for n in onto.instances_of(concept.node_id)
            if n.node_type == NodeType.ENTITY
        ]
        categories = [
            p.phrase for p in onto.parents_of(concept.node_id)
            if p.node_type == NodeType.CATEGORY
        ]
        if instances:
            rows.append((categories, concept.phrase, instances))
    rows.sort(key=lambda r: -len(r[2]))
    return rows[:limit]


def _event_rows(onto, limit=8):
    rows = []
    for topic in onto.nodes(NodeType.TOPIC):
        events = [
            n.phrase for n in onto.instances_of(topic.node_id)
            if n.node_type == NodeType.EVENT
        ]
        entities = set()
        for event_phrase in events:
            event = onto.find(NodeType.EVENT, event_phrase)
            for inv in onto.successors(event.node_id, EdgeType.INVOLVE):
                entities.add(inv.phrase)
        if events:
            rows.append((topic.phrase, events, sorted(entities)))
    rows.sort(key=lambda r: -len(r[1]))
    return rows[:limit]


def test_table3_concept_showcases(benchmark, ontology):
    rows = benchmark.pedantic(lambda: _concept_rows(ontology),
                              iterations=1, rounds=1)
    lines = ["Table 3: concepts with related categories and instances", ""]
    for categories, concept, instances in rows:
        cat = ", ".join(categories) or "-"
        lines.append(f"  [{cat}] {concept}")
        lines.append(f"      instances: {', '.join(instances[:5])}")
    write_result("table3_concept_showcases", "\n".join(lines))

    assert rows, "no concept showcases produced"
    # Every showcased concept must have at least one entity instance.
    assert all(instances for _c, _p, instances in rows)


def test_table4_event_showcases(benchmark, ontology):
    rows = benchmark.pedantic(lambda: _event_rows(ontology),
                              iterations=1, rounds=1)
    lines = ["Table 4: topics with events and involved entities", ""]
    for topic, events, entities in rows:
        lines.append(f"  topic: {topic}")
        for event in events[:3]:
            lines.append(f"      event: {event}")
        lines.append(f"      entities: {', '.join(entities[:5]) or '-'}")
    write_result("table4_event_showcases", "\n".join(lines))

    assert rows, "no event showcases produced"
    assert all(len(events) >= 2 for _t, events, _e in rows)
