"""Shared fixtures for the benchmark harness.

The benchmark world is larger than the test world (procedural domains, more
days, more examples per concept) and the models are trained at closer-to-
paper settings.  Heavy artifacts are session-scoped so each table/figure
bench reuses them.

Every bench writes its rendered table/figure to ``benchmarks/results/`` and
prints it, so the harness output survives pytest's capture settings.
"""

from __future__ import annotations

import pytest

from repro.config import GCTSPConfig
from repro.core.features import NodeFeatureExtractor
from repro.core.gctsp import GCTSPNet
from repro.datasets import build_cmd, build_emd, split_dataset
from repro.synth.querylog import QueryLogGenerator, build_click_graph
from repro.synth.world import WorldConfig, build_world
from repro.text.dependency import DependencyParser

from bench_common import SCALE, prepare, write_result  # noqa: F401


@pytest.fixture(scope="session")
def bench_world():
    if SCALE == "full":
        cfg = WorldConfig(num_extra_domains=6, num_days=7, seed=0,
                          events_per_template=3)
    else:
        cfg = WorldConfig(num_extra_domains=5, num_days=5, seed=0,
                          events_per_template=3)
    return build_world(cfg)


@pytest.fixture(scope="session")
def bench_days(bench_world):
    return QueryLogGenerator(bench_world).generate_days()


@pytest.fixture(scope="session")
def bench_click_graph(bench_days):
    return build_click_graph(bench_days)


@pytest.fixture(scope="session")
def bench_sessions(bench_days):
    return [s for day in bench_days for s in day.sessions]


@pytest.fixture(scope="session")
def bench_taggers(bench_world):
    return bench_world.register_text_models()


@pytest.fixture(scope="session")
def bench_extractor(bench_taggers):
    pos, ner = bench_taggers
    return NodeFeatureExtractor(pos, ner)


@pytest.fixture(scope="session")
def bench_parser(bench_taggers):
    return DependencyParser(bench_taggers[0])


@pytest.fixture(scope="session")
def bench_cmd(bench_world):
    per = 6 if SCALE == "full" else 6
    return build_cmd(bench_world, examples_per_concept=per, seed=7)


@pytest.fixture(scope="session")
def bench_emd(bench_world):
    per = 3 if SCALE == "full" else 2
    return build_emd(bench_world, examples_per_event=per, seed=13)


@pytest.fixture(scope="session")
def cmd_split(bench_cmd):
    return split_dataset(bench_cmd, seed=0)


@pytest.fixture(scope="session")
def emd_split(bench_emd):
    return split_dataset(bench_emd, seed=0)


@pytest.fixture(scope="session")
def gctsp_paper_config():
    # Paper settings: 5-layer R-GCN, hidden 32, B=5. Epochs tuned to scale.
    epochs = 25 if SCALE == "full" else 15
    return GCTSPConfig(num_layers=5, hidden_size=32, num_bases=5,
                       epochs=epochs, learning_rate=0.01, seed=0)


@pytest.fixture(scope="session")
def concept_gctsp(cmd_split, bench_extractor, bench_parser, gctsp_paper_config):
    train, _dev, _test = cmd_split
    cap = 250 if SCALE == "full" else 150
    examples = prepare(train[:cap], bench_extractor, bench_parser)
    model = GCTSPNet(gctsp_paper_config)
    model.fit(examples)
    return model


@pytest.fixture(scope="session")
def event_gctsp(emd_split, bench_extractor, bench_parser, gctsp_paper_config):
    train, _dev, _test = emd_split
    cap = 200 if SCALE == "full" else 90
    examples = prepare(train[:cap], bench_extractor, bench_parser)
    model = GCTSPNet(gctsp_paper_config)
    model.fit(examples)
    return model


@pytest.fixture(scope="session")
def key_element_gctsp(emd_split, bench_extractor, bench_parser, gctsp_paper_config):
    train, _dev, _test = emd_split
    cap = 200 if SCALE == "full" else 90
    examples = prepare(train[:cap], bench_extractor, bench_parser, roles=True)
    model = GCTSPNet(gctsp_paper_config, num_classes=4)
    model.fit(examples)
    return model
