"""Live traffic scenarios: mixed workloads under continuous telemetry.

The deployed GIANT services face mixed interactive traffic — tagging,
query interpretation, profile reads, story follow-ups — arriving
stochastically, not in neat benchmark batches.  This harness replays
seeded open-loop scenarios (Poisson arrivals at a configurable rate)
against the async serving tier (single store and 2-shard cluster
backends), with the PR's continuous-telemetry stack watching:

* a :class:`~repro.obs.MetricsCollector` samples the scenario registry
  throughout the run, so each scenario yields latency-percentile
  *series*, not just end-of-run numbers;
* an :class:`~repro.obs.SloEngine` turns the series into burn-rate
  verdicts per scenario;
* the fault-injection scenario drives a real RPC server whose backend
  is rigged to fail and stall, and asserts the flight recorder dumps
  events naming the failing component (the PR's acceptance check).

Per-scenario percentiles and SLO verdicts land in
``results/BENCH_tagging.json`` under ``traffic_scenarios`` /
``fault_injection``.  When ``REPRO_OBS_ARTIFACTS`` names a directory
(CI does this), recorder dumps and collector series are written there
for upload.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import random
import time

import pytest

import repro.obs.recorder as recorder_mod
from repro import GiantPipeline
from repro.apps.story_tree import EventRecord
from repro.cluster import ClusterService
from repro.core.ontology import NodeType
from repro.obs import (
    MetricsCollector,
    MetricsRegistry,
    SloEngine,
    SloSpec,
    configure_recorder,
)
from repro.serving import AsyncOntologyService, OntologyService
from repro.serving.rpc import RpcClient, RpcError, RpcServer
from repro.synth.documents import DocumentGenerator
from repro.synth.querylog import build_click_graph

from bench_common import SCALE, percentiles, write_json

TAGGER_OPTIONS = {"coherence_threshold": 0.02, "lcs_threshold": 0.6}

#: Directory CI exports telemetry artifacts into (dumps + series).
ARTIFACTS_ENV = "REPRO_OBS_ARTIFACTS"

#: Requests per scenario; the small profile is the CI smoke run.
REQUESTS = 120 if SCALE == "full" else 40

SCENARIOS = [
    {"name": "steady-mixed", "rate": 150.0, "requests": REQUESTS,
     "mix": {"query": 0.4, "tag": 0.2, "profile": 0.2, "story": 0.2},
     "latency_target": 0.25},
    {"name": "tag-heavy", "rate": 80.0, "requests": REQUESTS,
     "mix": {"tag": 0.7, "query": 0.3}, "latency_target": 0.5},
    {"name": "interactive-burst", "rate": 400.0, "requests": REQUESTS,
     "mix": {"query": 0.55, "profile": 0.25, "story": 0.2},
     "latency_target": 0.25},
]


@pytest.fixture(scope="module")
def traffic_world(bench_days, bench_taggers, bench_sessions, bench_world):
    """Ontology + request corpora for the scenarios (no trained models:
    the harness measures the serving fabric, not mining quality)."""
    pos, ner = bench_taggers
    pipe = GiantPipeline(
        build_click_graph(bench_days), pos, ner,
        categories=sorted({c[2] for c in bench_world.categories}),
    )
    pipe.run(sessions=bench_sessions)
    docs = DocumentGenerator(bench_world).corpus(12, 6)
    concepts = [node.phrase
                for node in pipe.ontology.nodes(NodeType.CONCEPT)][:20]
    queries = [f"best {phrase}" for phrase in concepts] or ["best cars"]
    tags = concepts or ["cars"]
    events = [EventRecord(f"{phrase} update {i}", "update", [phrase], day=i)
              for i, phrase in enumerate(tags[:6])]
    return {"pipe": pipe, "ner": ner, "docs": docs, "queries": queries,
            "tags": tags, "events": events}


def _artifacts_dir() -> "pathlib.Path | None":
    value = os.environ.get(ARTIFACTS_ENV)
    if not value:
        return None
    path = pathlib.Path(value)
    path.mkdir(parents=True, exist_ok=True)
    return path


def _scenario_specs(scenario: dict) -> "list[SloSpec]":
    return [
        SloSpec(name=f"{scenario['name']}-latency",
                latency_series="traffic.request_seconds.p95",
                latency_target=scenario["latency_target"],
                short_window=1.0, long_window=5.0),
        SloSpec(name=f"{scenario['name']}-errors",
                error_series="traffic.errors",
                total_series="traffic.requests",
                error_budget=0.02,
                short_window=1.0, long_window=5.0),
    ]


async def _drive_scenario(service, scenario: dict, world: dict,
                          registry: MetricsRegistry,
                          collector: MetricsCollector, seed: int) -> None:
    """Open-loop seeded arrivals: requests launch on their Poisson
    arrival times regardless of completions (the arrival process never
    slows down to hide a slow server), while a sampler task keeps the
    collector's series advancing mid-run."""
    rng = random.Random(seed)
    requests = registry.counter("traffic.requests")
    errors = registry.counter("traffic.errors")
    ops = list(scenario["mix"])
    weights = [scenario["mix"][op] for op in ops]

    async def one_request(op: str, index: int) -> None:
        requests.inc()
        start = registry.clock()
        try:
            if op == "tag":
                doc = world["docs"][index % len(world["docs"])]
                await service.tag_documents([doc])
            elif op == "query":
                query = world["queries"][index % len(world["queries"])]
                await service.interpret_queries([query])
            elif op == "profile":
                user = f"user-{index % 7}"
                tag = world["tags"][index % len(world["tags"])]
                await service.record_read(user, [tag])
                await service.user_interests(user, k=5)
            elif op == "story":
                event = world["events"][index % len(world["events"])]
                await service.track_events([event])
                await service.follow_ups(event.phrase, limit=3)
        except Exception:
            errors.inc()
            raise
        finally:
            registry.histogram("traffic.request_seconds").observe(
                registry.clock() - start)

    stop_sampling = asyncio.Event()

    async def sampler() -> None:
        while not stop_sampling.is_set():
            collector.sample()
            try:
                await asyncio.wait_for(stop_sampling.wait(), 0.05)
            except asyncio.TimeoutError:
                pass
        collector.sample()  # one closing cut after the last completion

    sampling = asyncio.ensure_future(sampler())
    inflight = []
    try:
        for index in range(scenario["requests"]):
            await asyncio.sleep(rng.expovariate(scenario["rate"]))
            [op] = rng.choices(ops, weights=weights)
            inflight.append(asyncio.ensure_future(one_request(op, index)))
        await asyncio.gather(*inflight)
    finally:
        stop_sampling.set()
        await sampling


def _run_scenarios(backend, tier: str, world: dict,
                   scenarios: "list[dict] | None" = None) -> dict:
    results = {}
    artifacts = _artifacts_dir()
    for seed, scenario in enumerate(scenarios if scenarios is not None
                                    else SCENARIOS):
        registry = MetricsRegistry()
        collector = MetricsCollector(registry, interval=0.05, capacity=600)
        engine = SloEngine(collector, _scenario_specs(scenario))

        async def drive() -> None:
            async with AsyncOntologyService(backend, max_batch_size=16,
                                            max_delay=0.002,
                                            registry=registry) as service:
                await _drive_scenario(service, scenario, world, registry,
                                      collector, seed=seed)

        start = time.perf_counter()
        asyncio.run(asyncio.wait_for(drive(), 300))
        wall = time.perf_counter() - start
        verdicts = engine.evaluate_all()
        snap = registry.snapshot()
        p95_series = collector.series("traffic.request_seconds.p95")
        assert snap["traffic.requests"] == scenario["requests"]
        assert snap["traffic.errors"] == 0
        assert p95_series, "the collector must capture mid-run percentiles"
        assert all(v["verdict"] in ("healthy", "warn", "page", "unknown")
                   for v in verdicts)
        results[scenario["name"]] = {
            "requests": scenario["requests"],
            "errors": snap["traffic.errors"],
            "arrival_rate": scenario["rate"],
            "achieved_rps": round(scenario["requests"] / wall, 1),
            "mix": scenario["mix"],
            "latency": percentiles(snap, "traffic.request_seconds"),
            "p95_series_points": len(p95_series),
            "collector_samples": collector.samples_taken,
            "slo": [{"slo": v["slo"], "verdict": v["verdict"]}
                    for v in verdicts],
        }
        if artifacts is not None:
            series_path = artifacts / f"series-{tier}-{scenario['name']}.json"
            series_path.write_text(
                json.dumps(collector.tail(points=600), indent=1,
                           sort_keys=True) + "\n")
    return results


def test_traffic_scenarios_single_store(traffic_world):
    """The scenario suite against the async front on a single store."""
    world = traffic_world
    backend = OntologyService(world["pipe"].ontology, ner=world["ner"],
                              tagger_options=dict(TAGGER_OPTIONS))
    results = _run_scenarios(backend, "single", world)
    write_json("BENCH_tagging", {
        "traffic_scenarios": {"tier": "async-single", "scale": SCALE,
                              "scenarios": results},
    })


def test_traffic_scenarios_cluster(traffic_world):
    """One mixed scenario against the async front on a 2-shard
    scatter-gather cluster (the full suite would double bench wall
    time for the same fabric paths)."""
    world = traffic_world
    cluster = ClusterService(num_shards=2, ner=world["ner"],
                             tagger_options=dict(TAGGER_OPTIONS),
                             deltas=world["pipe"].deltas)
    results = _run_scenarios(cluster, "cluster", world,
                             scenarios=[SCENARIOS[0]])
    write_json("BENCH_tagging", {
        "traffic_scenarios_cluster": {"tier": "async-cluster",
                                      "num_shards": 2, "scale": SCALE,
                                      "scenarios": results},
    })


class _RiggedBackend:
    """Delegates to a real service, but ``interpret_queries`` fails on
    ``"boom"`` queries and stalls on ``"slow"`` ones — the forced-fault
    half of the acceptance criteria."""

    def __init__(self, inner, stall_seconds: float) -> None:
        self._inner = inner
        self._stall = stall_seconds

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def interpret_queries(self, queries):
        if any(q == "boom" for q in queries):
            raise RuntimeError("injected backend fault")
        if any(q == "slow" for q in queries):
            time.sleep(self._stall)
        return self._inner.interpret_queries(
            [q for q in queries if q not in ("boom", "slow")]) or [None]


def test_fault_scenario_dumps_flight_recorder(traffic_world, tmp_path):
    """Acceptance: an injected fault (forced slow call + failing call)
    through the live RPC stack produces flight-recorder dumps whose
    events name the failing component."""
    world = traffic_world
    artifacts = _artifacts_dir()
    recorder_dir = str(artifacts) if artifacts is not None else str(tmp_path)
    configure_recorder(recorder_dir, process="traffic-bench",
                       slow_call_seconds=0.02, min_dump_interval=0.0)
    registry = MetricsRegistry()
    collector = MetricsCollector(registry, interval=0.05, capacity=600)
    # Both windows span the whole (sub-second) run, so the verdict is
    # about the burn math, not about where the shuffled faults landed.
    engine = SloEngine(collector, [
        SloSpec(name="rpc-errors", error_series="rpc.server.errors",
                total_series="rpc.server.frames_in", error_budget=0.02,
                short_window=60.0, long_window=60.0),
    ])
    inner = OntologyService(world["pipe"].ontology, ner=world["ner"],
                            tagger_options=dict(TAGGER_OPTIONS))
    backend = _RiggedBackend(inner, stall_seconds=0.05)
    rng = random.Random(17)
    plan = (["boom"] * 6 + ["slow"] * 3
            + world["queries"][:9])
    rng.shuffle(plan)
    errors_seen = 0

    async def drive() -> int:
        nonlocal errors_seen
        async with AsyncOntologyService(backend,
                                        registry=registry) as service:
            server = RpcServer(service, registry=registry)
            host, port = await server.start()
            client = await RpcClient.connect(host, port, registry=registry)
            try:
                for query in plan:
                    collector.sample()
                    try:
                        await client.call("interpret_queries", [query])
                    except RpcError:
                        errors_seen += 1
                collector.sample()
            finally:
                await client.close()
                await server.close()
        return errors_seen

    try:
        asyncio.run(asyncio.wait_for(drive(), 300))
        recorder = recorder_mod.get_recorder()
        kinds = {(e["kind"], e["component"]) for e in recorder.events()}
        assert errors_seen == 6
        assert ("rpc.error", "rpc.server.interpret_queries") in kinds
        assert ("rpc.slow_call", "rpc.server.interpret_queries") in kinds
        dumps = sorted(pathlib.Path(recorder_dir)
                       .glob("flight-traffic-bench-*.jsonl"))
        assert dumps, "anomalies must dump when a recorder dir is set"
        assert "rpc.server.interpret_queries" \
            in dumps[-1].read_text(encoding="utf-8")
        verdicts = engine.evaluate_all()
        [errors_verdict] = verdicts
        # a third of calls failed against a 2% budget: the burn pages
        assert errors_verdict["verdict"] in ("warn", "page")
        write_json("BENCH_tagging", {
            "fault_injection": {
                "injected_errors": 6,
                "injected_slow_calls": 3,
                "errors_observed": errors_seen,
                "recorder_dumps": len(dumps),
                "anomalies": recorder.anomalies,
                "failing_component": "rpc.server.interpret_queries",
                "slo": [{"slo": v["slo"], "verdict": v["verdict"]}
                        for v in verdicts],
            },
        })
    finally:
        recorder_mod._RECORDER = None
