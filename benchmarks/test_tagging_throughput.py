"""Section 5.1/5.3 text — document-tagging precision and throughput.

Paper: the deployed system tags ~1.5M documents/day (350 docs/second);
~35% of documents receive a concept tag and ~4% an event tag; human-judged
concept-tagging precision is 88% overall and event tagging 96%.

The bench tags a synthetic evaluation corpus through the serving layer's
batched :meth:`OntologyService.tag_documents` API (index-driven candidate
generation) and reports precision against gold document tags, the fraction
of documents tagged, and docs/second.  The cluster benches then (a) verify
the 4-shard :class:`ClusterService` tags/interprets byte-identically to
the single store, and (b) measure the multi-process
:class:`TaggingWorkerPool` docs/sec against the single-process path,
emitting machine-readable numbers to ``results/BENCH_tagging.json`` so
the perf trajectory is trackable across PRs.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import GiantPipeline
from repro.cluster import ClusterService, TaggingWorkerPool
from repro.core.store import OntologyStore
from repro.eval.reporting import render_table
from repro.obs import MetricsRegistry
from repro.serving import OntologyService
from repro.synth.documents import DocumentGenerator
from repro.synth.querylog import build_click_graph

from bench_common import SCALE, percentiles, write_json, write_result

TAGGER_OPTIONS = {"coherence_threshold": 0.02, "lcs_threshold": 0.6}


@pytest.fixture(scope="module")
def service_and_corpus(bench_days, bench_taggers, bench_sessions, bench_world,
                       concept_gctsp, key_element_gctsp):
    pos, ner = bench_taggers
    pipe = GiantPipeline(
        build_click_graph(bench_days), pos, ner,
        concept_model=concept_gctsp,
        key_element_model=key_element_gctsp,
        categories=sorted({c[2] for c in bench_world.categories}),
    )
    pipe.run(sessions=bench_sessions)
    service = OntologyService(
        pipe.ontology, ner=ner, tagger_options=dict(TAGGER_OPTIONS),
    )
    n_concept = 80 if SCALE == "full" else 40
    n_event = 40 if SCALE == "full" else 20
    corpus = DocumentGenerator(bench_world).corpus(n_concept, n_event)
    return service, corpus, pipe, ner


def test_tagging_precision_and_throughput(benchmark, service_and_corpus):
    service, corpus, _pipe, _ner = service_and_corpus

    # Tag in fixed-size chunks through a repro.obs latency histogram so
    # the recorded numbers carry a p50/p95/p99 distribution, not just a
    # mean (per-document results are independent, so chunking does not
    # change the tagging output).
    registry = MetricsRegistry()
    chunk = 10

    def tag_all():
        tagged = []
        for start in range(0, len(corpus), chunk):
            with registry.time("tag_chunk_seconds"):
                tagged.extend(service.tag_documents(corpus[start:start + chunk]))
        return tagged

    tagged = benchmark.pedantic(tag_all, iterations=1, rounds=3)

    from repro.core.ontology import NodeType

    ontology = service.ontology

    def concept_tag_correct(tag: str, gold_concepts: set[str]) -> bool:
        """A tag is judged correct when it IS the gold concept or an isA
        *ancestor* of it — e.g. "animated films" for a document whose gold
        concept is "hayao miyazaki animated films" (this mirrors the human
        judgement protocol: is the tag true of the document?)."""
        if tag in gold_concepts:
            return True
        tag_node = ontology.find(NodeType.CONCEPT, tag)
        if tag_node is None:
            return False
        for gold in gold_concepts:
            gold_node = ontology.find(NodeType.CONCEPT, gold)
            if gold_node is not None and ontology.has_path(
                    tag_node.node_id, gold_node.node_id):
                return True
        return False

    concept_tp = concept_fp = 0
    event_tp = event_fp = 0
    docs_with_concept = docs_with_event = 0
    for doc, result in zip(corpus, tagged):
        if result.concept_tags:
            docs_with_concept += 1
        if result.event_tags:
            docs_with_event += 1
        for tag in result.concept_tags[:1]:  # judge the top tag, as humans did
            if concept_tag_correct(tag, doc.gold_concepts):
                concept_tp += 1
            elif doc.gold_concepts:
                concept_fp += 1
        for tag in result.event_tags[:1]:
            # Judge-style: a mined event phrase may carry extra elements
            # (e.g. an "in <location>" suffix); the tag is correct when it
            # and a gold event contain each other as token subsequences.
            tag_tokens = tag.split()
            hit = False
            for gold in doc.gold_events:
                gold_tokens = gold.split()
                short, long_ = sorted((tag_tokens, gold_tokens), key=len)
                it = iter(long_)
                if all(tok in it for tok in short):
                    hit = True
                    break
            if hit:
                event_tp += 1
            elif doc.gold_events:
                event_fp += 1

    concept_precision = concept_tp / max(1, concept_tp + concept_fp)
    event_precision = event_tp / max(1, event_tp + event_fp)
    docs_per_sec = len(corpus) / benchmark.stats.stats.mean
    rows = [
        ("concept tagging", {
            "precision": concept_precision,
            "tagged%": docs_with_concept / len(corpus),
        }),
        ("event tagging", {
            "precision": event_precision,
            "tagged%": docs_with_event / len(corpus),
        }),
    ]
    table = render_table(
        "Document tagging: precision vs gold, fraction tagged, docs/sec",
        ["precision", "tagged%"], rows, precision=3,
    )
    table += (f"\nthroughput: {docs_per_sec:.1f} docs/sec "
              f"({len(corpus)} docs, serving batch API)")
    write_result("tagging_precision", table)
    write_json("BENCH_tagging", {
        "scale": SCALE,
        "single_process": {
            "docs_per_sec": round(docs_per_sec, 1),
            "corpus_docs": len(corpus),
            "concept_precision": round(concept_precision, 3),
            "event_precision": round(event_precision, 3),
            "latency": dict(
                percentiles(registry.snapshot(), "tag_chunk_seconds"),
                chunk_docs=chunk),
        },
    })

    # Paper shape: both precisions high; event tagging the more precise.
    assert concept_precision >= 0.6
    assert event_precision >= 0.6
    assert docs_with_concept > 0 and docs_with_event > 0


def test_cluster_service_identical_on_benchmark_world(service_and_corpus):
    """Acceptance gate: at 4 shards, scatter-gather serving output is
    byte-identical to the single-store service on the benchmark world."""
    service, corpus, pipe, ner = service_and_corpus
    cluster = ClusterService(num_shards=4, ner=ner,
                             tagger_options=dict(TAGGER_OPTIONS),
                             deltas=pipe.deltas)
    assert cluster.stats()["ontology"] == service.stats()["ontology"]
    assert cluster.tag_documents(corpus) == service.tag_documents(corpus)
    queries = [f"best {node.phrase}"
               for node in pipe.ontology.nodes()[:40]]
    # Per-query scatter-gather latency distribution (single-query calls
    # so each sample is one fan-out across all four shards).
    registry = MetricsRegistry()
    for query in queries:
        with registry.time("interpret_query_seconds"):
            cluster.interpret_queries([query])
    assert (cluster.interpret_queries(queries)
            == service.interpret_queries(queries))
    shards = cluster.stats()["shards"]
    write_json("BENCH_tagging", {
        "cluster_identity": {
            "num_shards": 4,
            "verified_docs": len(corpus),
            "verified_queries": len(queries),
            "owned_per_shard": [line["owned"] for line in shards],
            "ghosts_per_shard": [line["ghosts"] for line in shards],
            "interpret_latency": percentiles(
                registry.snapshot(), "interpret_query_seconds"),
        },
    })


def test_async_concurrent_streams_throughput(service_and_corpus):
    """Acceptance gate: ≥8 concurrent client streams through the async
    micro-batching front return byte-identical results to the sync
    service, and the concurrent-streams docs/sec is recorded.

    Wrapped in ``asyncio.wait_for`` (the suite's per-test timeout guard)
    so a hung event loop fails rather than wedging CI.
    """
    import asyncio

    from repro.serving import AsyncOntologyService
    from repro.serving.rpc import dumps

    service, corpus, _pipe, _ner = service_and_corpus
    streams = 8
    chunk = 5
    sync_start = time.perf_counter()
    sync_results = service.tag_documents(corpus * streams)
    sync_secs = time.perf_counter() - sync_start
    expected = sync_results[: len(corpus)]

    async def one_stream(aio):
        tagged = []
        for start in range(0, len(corpus), chunk):
            tagged.extend(await aio.tag_documents(corpus[start:start + chunk]))
        return tagged

    registry = MetricsRegistry()

    async def run():
        async with AsyncOntologyService(service, max_batch_size=4 * chunk,
                                        max_delay=0.002,
                                        registry=registry) as aio:
            start = time.perf_counter()
            results = await asyncio.gather(
                *[one_stream(aio) for _ in range(streams)])
            secs = time.perf_counter() - start
            stats = await aio.stats()
        return results, secs, stats

    results, secs, stats = asyncio.run(asyncio.wait_for(run(), 600))
    assert len(results) == streams
    for stream_result in results:
        assert stream_result == expected
        assert dumps(stream_result) == dumps(expected)
    batcher = stats["async"]
    assert batcher["batches"] < batcher["requests"]  # merging happened

    total_docs = streams * len(corpus)
    async_dps = total_docs / secs
    sync_dps = total_docs / sync_secs
    snap = registry.snapshot()
    write_json("BENCH_tagging", {
        "async_streams": {
            "streams": streams,
            "docs_per_sec": round(async_dps, 1),
            "sync_docs_per_sec": round(sync_dps, 1),
            "corpus_docs": total_docs,
            "byte_identical": True,
            "batches": batcher["batches"],
            "requests": batcher["requests"],
            "max_batch_items": batcher["max_batch_items"],
            "execute_latency": percentiles(
                snap, "aio.batcher.execute_seconds"),
            "queue_wait_latency": percentiles(
                snap, "aio.batcher.queue_wait_seconds"),
        },
    })
    print(f"\nasync serving: {streams} streams at {async_dps:.1f} docs/sec "
          f"vs {sync_dps:.1f} sync ({batcher['requests']} requests merged "
          f"into {batcher['batches']} batches)")
    # Micro-batching amortises dispatch, so the async front should stay
    # within 2x of the raw sync path; like the multiprocess speedup
    # gate, the timing assertion only arms with >=2 cores — a contended
    # single-core runner can jitter arbitrarily (numbers still recorded).
    if (os.cpu_count() or 1) >= 2:
        assert async_dps >= 0.5 * sync_dps


def test_multiprocess_tagging_throughput(service_and_corpus):
    """Multi-process docs/sec vs the single-process indexed path.

    Workers bootstrap replicas from a compacted snapshot + tail deltas
    (the cluster bootstrap protocol), then tag disjoint corpus chunks.
    The ≥2x speedup assertion only fires on machines with ≥4 cores —
    on fewer cores the numbers are still measured and recorded.
    """
    service, corpus, pipe, ner = service_and_corpus
    cores = os.cpu_count() or 1
    workers = max(2, min(4, cores))
    repeat = 8 if SCALE == "full" else 4
    big_corpus = [(f"{doc.doc_id}#{i}", doc.title_tokens, doc.sentences)
                  for i in range(repeat) for doc in corpus]

    start = time.perf_counter()
    single_results = service.tag_documents(big_corpus)
    single_secs = time.perf_counter() - start
    single_dps = len(big_corpus) / single_secs

    split = max(1, len(pipe.deltas) // 2)
    snapshot = OntologyStore.bootstrap(None, pipe.deltas[:split]).compact()
    with TaggingWorkerPool(pipe.deltas, ner=ner, snapshot=snapshot,
                           tagger_options=dict(TAGGER_OPTIONS),
                           num_workers=workers) as pool:
        pool.tag_documents(big_corpus[:workers])  # warm-up past bootstrap
        start = time.perf_counter()
        pool_results = pool.tag_documents(big_corpus)
        pool_secs = time.perf_counter() - start
        # Separate chunked pass for the latency distribution, so the
        # speedup measurement above stays a single fan-out call.
        registry = MetricsRegistry()
        hist_chunk = max(1, len(big_corpus) // 8)
        for s in range(0, len(big_corpus), hist_chunk):
            with registry.time("pool_request_seconds"):
                pool.tag_documents(big_corpus[s:s + hist_chunk])
    pool_dps = len(big_corpus) / pool_secs
    speedup = pool_dps / single_dps

    assert pool_results == single_results  # scatter-gather is lossless
    write_json("BENCH_tagging", {
        "multiprocess": {
            "docs_per_sec": round(pool_dps, 1),
            "single_docs_per_sec": round(single_dps, 1),
            "speedup": round(speedup, 2),
            "workers": workers,
            "cores": cores,
            "corpus_docs": len(big_corpus),
            "snapshot_bootstrap": True,
            "latency": dict(
                percentiles(registry.snapshot(), "pool_request_seconds"),
                chunk_docs=hist_chunk),
        },
    })
    print(f"\nmulti-process tagging: {pool_dps:.1f} docs/sec with "
          f"{workers} workers vs {single_dps:.1f} single "
          f"({speedup:.2f}x on {cores} cores)")
    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected >=2x docs/sec with {workers} workers on {cores} "
            f"cores, got {speedup:.2f}x")
