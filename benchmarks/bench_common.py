"""Shared helpers for the benchmark harness (imported by bench modules).

Kept separate from conftest.py so bench files never import a module named
``conftest`` (which would collide with tests/conftest.py when both suites
run in one pytest invocation).
"""

from __future__ import annotations

import os
import pathlib

from repro.core.gctsp import prepare_example

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Benchmarks honour REPRO_BENCH_SCALE in {small, full}; "small" keeps CI fast.
SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def write_result(name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text + "\n")


def prepare(examples, extractor, parser, roles=False):
    """Prepare GraphExamples from MiningExamples."""
    return [
        prepare_example(
            e.queries, e.titles, extractor, parser,
            gold_tokens=e.gold_tokens,
            token_roles=e.token_roles if roles else None,
        )
        for e in examples
    ]
