"""Shared helpers for the benchmark harness (imported by bench modules).

Kept separate from conftest.py so bench files never import a module named
``conftest`` (which would collide with tests/conftest.py when both suites
run in one pytest invocation).
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.core.gctsp import prepare_example

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Benchmarks honour REPRO_BENCH_SCALE in {small, full}; "small" keeps CI fast.
SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def write_result(name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text + "\n")


def write_json(name: str, payload: dict) -> dict:
    """Merge ``payload`` into ``results/<name>.json`` (machine-readable
    bench output, trackable across PRs); returns the merged document.

    Bench tests in one module contribute sections independently, so the
    file is read-merge-written rather than overwritten.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    merged: dict = {}
    if path.exists():
        merged = json.loads(path.read_text())
    merged.update(payload)
    path.write_text(json.dumps(merged, indent=1, sort_keys=True) + "\n")
    print(f"\n[{name}.json] " + json.dumps(payload, sort_keys=True) + "\n")
    return merged


def percentiles(snapshot: dict, name: str) -> dict:
    """Project one latency histogram out of a
    :meth:`repro.obs.MetricsRegistry.snapshot` into the p50/p95/p99
    summary recorded in the bench JSON alongside docs/sec."""
    hist = snapshot[name]
    return {
        "count": hist["count"],
        "p50": round(hist["p50"], 6),
        "p95": round(hist["p95"], 6),
        "p99": round(hist["p99"], 6),
        "max": round(hist["max"], 6),
    }


def prepare(examples, extractor, parser, roles=False):
    """Prepare GraphExamples from MiningExamples."""
    return [
        prepare_example(
            e.queries, e.titles, extractor, parser,
            gold_tokens=e.gold_tokens,
            token_roles=e.token_roles if roles else None,
        )
        for e in examples
    ]
