"""Audit campaign bench: consistency under faults, with numbers.

Runs the seeded fault-injection campaign (worker kill + restart,
follower delay, GC under lag, one mid-traffic chunked rebalance) and
records the outcome under ``audit_campaign`` in
``results/BENCH_tagging.json``:

* ``violations`` — the headline: **must be 0** (the assert enforces it;
  a non-zero count is a consistency bug, not a slow run);
* ``rebalance_read_p99_ms`` — p99 latency of the stamped reads served
  *between* transfer chunks of the staged rebalance, i.e. what the
  chunked transfer exists to bound (the old monolithic transfer served
  nothing until the flip);
* the campaign's traffic and fault volume, so the two numbers above
  have denominators.
"""

from __future__ import annotations

from bench_common import SCALE, write_json
from repro.audit import generate_schedule, run_campaign

_SEED = 3


def _p99_ms(latencies: "list[float]") -> "float | None":
    if not latencies:
        return None
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(len(ordered) * 0.99))
    return round(ordered[index] * 1000, 3)


def test_audit_campaign(tmp_path):
    steps = 12 if SCALE == "small" else 36
    schedule = generate_schedule(seed=_SEED, steps=steps, start_shards=2,
                                 rebalance_to=3, chunk_nodes=2)
    report = run_campaign(schedule, tmp_path / "log", name="bench")
    rebalance = report["rebalance"] or {}
    write_json("BENCH_tagging", {
        "audit_campaign": {
            "seed": _SEED,
            "steps": steps,
            "ops": report["ops"],
            "stamped_reads": report["reads"],
            "writes": report["writes"],
            "faults": len(report["faults"]),
            "fault_kinds": sorted({f["kind"] for f in report["faults"]}),
            "violations": len(report["violations"]),
            "rebalance_transfer_chunks": rebalance.get("transfer_chunks"),
            "rebalance_interleaved_reads": len(
                rebalance.get("interleaved_read_latencies") or []),
            "rebalance_read_p99_ms": _p99_ms(
                rebalance.get("interleaved_read_latencies") or []),
            "final_version": report["final_version"],
        },
    })
    assert report["violations"] == [], report["violations"]
    assert rebalance.get("transfer_chunks", 0) >= 1
