"""Columnar segments and the binary shard-read wire (DESIGN.md §10).

Measures, at a ~10x-scale synthetic ontology:

* **bytes/node** of the canonical-JSON snapshot vs the packed columnar
  segment — the storage acceptance gate asserts the columnar encoding is
  at least 3x denser (structure-dependent, so never timing-gated);
* snapshot **encode/decode MB/s** for both formats;
* shard-read RPC response **docs/sec** through the JSON codec vs the
  negotiated binary frame codec (the timing assertion arms only on >=2
  cores, like the other throughput gates);
* **round_trip_identical** — both decoders must reproduce inputs
  ``rpc.dumps``-byte-identically; CI fails the job when this flag is
  missing from ``results/BENCH_tagging.json`` (identity check skipped)
  or false.

Everything lands in the ``columnar`` section of
``results/BENCH_tagging.json`` so the density/throughput trajectory is
trackable across PRs.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.core.columnar import decode_store_segment, encode_store_segment
from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.core.serialize import store_to_dict
from repro.serving.rpc import decode, dumps, dumps_binary, loads_binary

from bench_common import SCALE, write_json

_ADJS = ["solar", "lunar", "hyper", "rapid", "silent", "crimson",
         "golden", "arctic", "neon", "quiet"]
_NOUNS = ["cars", "movies", "phones", "novels", "recipes", "trails",
          "startups", "satellites", "teams", "gadgets"]


def _scaled_store(scale: int) -> AttentionOntology:
    """A deterministic ontology ~``scale``x the unit-test worlds: every
    concept carries entities, aliases and isA/correlate edges, so the
    snapshot exercises id interning, alias maps and edge columns the way
    a pipeline-built store does."""
    rng = random.Random(0)
    onto = AttentionOntology()
    for index in range(40 * scale):
        adj, noun = rng.choice(_ADJS), rng.choice(_NOUNS)
        concept = onto.add_node(
            NodeType.CONCEPT, f"{adj} {noun} {index}",
            payload={"support": index % 17} if index % 3 else {})
        if index % 4 == 0:
            onto.add_alias(concept.node_id, f"best {adj} {noun} {index}")
        entities = []
        for sub in range(rng.randint(3, 6)):
            entity = onto.add_node(NodeType.ENTITY,
                                   f"{adj} {noun} model {index}-{sub}")
            onto.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
            entities.append(entity)
        if len(entities) >= 2:
            onto.add_edge(entities[0].node_id, entities[1].node_id,
                          EdgeType.CORRELATE,
                          weight=round(rng.random(), 3))
    return onto


def _mb_per_sec(num_bytes: int, seconds: float) -> float:
    return round(num_bytes / max(seconds, 1e-9) / 1e6, 1)


def test_columnar_density_and_codec_throughput():
    scale = 10 if SCALE == "small" else 20
    onto = _scaled_store(scale)
    store = onto.store
    snapshot = store_to_dict(store)

    # --- snapshot density + encode/decode throughput -----------------
    start = time.perf_counter()
    json_bytes = dumps(snapshot)
    json_encode_s = time.perf_counter() - start
    start = time.perf_counter()
    json.loads(json_bytes.decode("utf-8"))
    json_decode_s = time.perf_counter() - start

    start = time.perf_counter()
    segment = encode_store_segment(snapshot)
    col_encode_s = time.perf_counter() - start
    start = time.perf_counter()
    decoded = decode_store_segment(segment)
    col_decode_s = time.perf_counter() - start

    # JSON is the oracle: the segment must reproduce it byte-for-byte.
    round_trip_identical = dumps(decoded) == json_bytes

    n_nodes = len(store)
    json_bpn = len(json_bytes) / n_nodes
    col_bpn = len(segment) / n_nodes
    ratio = json_bpn / col_bpn

    # --- shard-read RPC response codec throughput --------------------
    # A representative scatter reply: the node objects one shard returns
    # to a candidates/nodes read (what the hot path actually ships).
    reply = store.nodes()[: 400 * scale // 2]
    rounds = 3 if SCALE == "small" else 6

    start = time.perf_counter()
    for _ in range(rounds):
        wire = dumps(reply)
        decode(json.loads(wire.decode("utf-8")))
    json_codec_s = time.perf_counter() - start
    json_docs_sec = rounds * len(reply) / max(json_codec_s, 1e-9)

    start = time.perf_counter()
    for _ in range(rounds):
        frame = dumps_binary(reply)
        binary_reply = loads_binary(frame)
    binary_codec_s = time.perf_counter() - start
    binary_docs_sec = rounds * len(reply) / max(binary_codec_s, 1e-9)

    wire_identical = dumps(binary_reply) == dumps(reply)
    round_trip_identical = round_trip_identical and wire_identical

    write_json("BENCH_tagging", {
        "columnar": {
            "nodes": n_nodes,
            "edges": len(store.edges()),
            "bytes_per_node": {
                "json": round(json_bpn, 1),
                "columnar": round(col_bpn, 1),
                "ratio": round(ratio, 2),
            },
            "snapshot_mb_per_sec": {
                "json_encode": _mb_per_sec(len(json_bytes), json_encode_s),
                "json_decode": _mb_per_sec(len(json_bytes), json_decode_s),
                "columnar_encode": _mb_per_sec(len(segment), col_encode_s),
                "columnar_decode": _mb_per_sec(len(segment), col_decode_s),
            },
            "rpc_docs_per_sec": {
                "json": round(json_docs_sec, 1),
                "binary": round(binary_docs_sec, 1),
                "reply_docs": len(reply),
            },
            "round_trip_identical": round_trip_identical,
        },
    })
    print(f"\ncolumnar: {json_bpn:.1f} -> {col_bpn:.1f} bytes/node "
          f"({ratio:.2f}x); rpc {json_docs_sec:.0f} -> "
          f"{binary_docs_sec:.0f} docs/sec")

    # Identity and density gates are structural, never timing-gated.
    assert round_trip_identical, \
        "columnar/binary decode diverged from the JSON oracle"
    assert ratio >= 3.0, \
        f"columnar segment only {ratio:.2f}x denser than JSON (need >=3x)"
    # Codec throughput is timing: arm only off contended single cores.
    if (os.cpu_count() or 1) >= 2:
        assert binary_docs_sec > json_docs_sec, \
            (f"binary wire {binary_docs_sec:.0f} docs/sec did not beat "
             f"JSON {json_docs_sec:.0f}")
