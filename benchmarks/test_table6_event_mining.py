"""Table 6 — event mining: EM / F1 / COV for five methods.

Paper numbers (Chinese EMD, 10,668 examples):

    TextRank     0.3968  0.8102  1.0000
    CoverRank    0.4663  0.8169  1.0000
    TextSummary  0.0047  0.1064  1.0000
    LSTM-CRF     0.4597  0.8469  1.0000
    GCTSP-Net    0.5164  0.8562  0.9972

Shape checks: GCTSP-Net tops EM/F1; TextSummary collapses (generative
decoding cannot reproduce exact extractive phrases); CoverRank beats
TextRank on EM.
"""

from __future__ import annotations

import pytest

from repro.baselines import CoverRankBaseline, TextRankExtractor, TextSummaryBaseline, TitleLstmCrf
from repro.eval import evaluate_phrases
from repro.eval.reporting import render_table

from bench_common import SCALE, write_result

COLUMNS = ["EM", "F1", "COV"]


@pytest.fixture(scope="module")
def methods(emd_split, event_gctsp, bench_extractor, bench_parser):
    train, _dev, _test = emd_split
    cap = 120 if SCALE == "full" else 50

    textrank = TextRankExtractor(top_k=5)
    coverrank = CoverRankBaseline(min_len=3, max_len=20)
    textsummary = TextSummaryBaseline(embed_dim=24, hidden=24)
    textsummary.fit_examples(train[: cap // 2], epochs=2, lr=0.02)
    lstm_crf = TitleLstmCrf(min_len=3, max_len=20, embed_dim=32, hidden=25)
    lstm_crf.fit_examples(train[:cap], epochs=5, lr=0.03)

    from repro.core.gctsp import prepare_example

    def gctsp_extract(queries, titles):
        example = prepare_example(queries, titles, bench_extractor, bench_parser)
        return event_gctsp.extract_phrase(example)

    return [
        ("TextRank", textrank.extract),
        ("CoverRank", coverrank.extract),
        ("TextSummary", textsummary.extract),
        ("LSTM-CRF", lstm_crf.extract),
        ("GCTSP-Net", gctsp_extract),
    ]


def _evaluate_all(methods, test_examples):
    rows = []
    for name, extract in methods:
        preds = [extract(e.queries, e.titles) for e in test_examples]
        golds = [e.gold_tokens for e in test_examples]
        rows.append((name, evaluate_phrases(preds, golds).as_row()))
    return rows


def test_table6_event_mining(benchmark, methods, emd_split):
    _train, _dev, test = emd_split
    rows = benchmark.pedantic(
        _evaluate_all, args=(methods, test), iterations=1, rounds=1
    )
    table = render_table(
        "Table 6: event mining on the synthetic EMD (EM / F1 / COV)",
        COLUMNS, rows,
    )
    write_result("table6_event_mining", table)

    scores = dict(rows)
    assert scores["GCTSP-Net"]["F1"] == max(r["F1"] for r in scores.values())
    assert scores["TextSummary"]["EM"] <= min(
        scores["GCTSP-Net"]["EM"], scores["CoverRank"]["EM"]
    )
    assert scores["CoverRank"]["EM"] >= scores["TextRank"]["EM"] * 0.8
    assert scores["GCTSP-Net"]["COV"] >= 0.9
