"""Tables 1-2 — ontology node counts, growth per day, and edge accuracy.

Paper (web-scale, for reference):
    Table 1: 1,206 categories / 460,652 concepts / 12,679 topics /
             86,253 events / 1,980,841 entities; +11,000 concepts and
             +120 events per day.
    Table 2: 490,741 isA / 1,080,344 correlate / 160,485 involve edges;
             accuracies 95%+ / 95%+ / 99%+.

The reproduction runs the full pipeline over the synthetic log stream and
reports the same rows at simulator scale, plus growth per day (new concepts
and events when one more day of logs is added) and edge accuracy against
the ground-truth world.
"""

from __future__ import annotations

import pytest

from repro import GiantPipeline
from repro.core.ontology import EdgeType, NodeType
from repro.eval.reporting import render_table
from repro.synth.querylog import build_click_graph

from bench_common import write_result


@pytest.fixture(scope="module")
def pipeline_factory(bench_taggers, bench_sessions, bench_world,
                     concept_gctsp, key_element_gctsp):
    pos, ner = bench_taggers
    categories = sorted({c[2] for c in bench_world.categories})

    def build(days):
        graph = build_click_graph(days)
        pipe = GiantPipeline(
            graph, pos, ner,
            concept_model=concept_gctsp,
            key_element_model=key_element_gctsp,
            categories=categories,
        )
        sessions = [s for d in days for s in d.sessions]
        pipe.run(sessions=sessions)
        return pipe

    return build


def _edge_accuracy(pipe, world):
    """Precision of each edge type against ground truth."""
    onto = pipe.ontology
    gold_ce = world.gold_concept_entity_pairs()
    gold_cat = {(c[2], phrase) for phrase, c in world.gold_concept_category().items()}
    gold_corr = world.gold_correlated_entities()
    gold_involve = {(p, e) for p, e, _r in world.gold_event_involvements()}

    def node(nid):
        return onto.node(nid)

    isa_total = isa_correct = 0
    for edge in onto.edges(EdgeType.ISA):
        src, dst = node(edge.source), node(edge.target)
        if src.node_type == NodeType.CONCEPT and dst.node_type == NodeType.ENTITY:
            isa_total += 1
            gold_names = {src.phrase} | set(src.aliases)
            if any((g, dst.phrase) in gold_ce for g in gold_names):
                isa_correct += 1
        elif src.node_type == NodeType.CATEGORY:
            isa_total += 1
            if (src.phrase, dst.phrase) in gold_cat or dst.node_type != NodeType.CONCEPT:
                isa_correct += 1
        else:
            # concept->concept / topic->event structural edges: correct when
            # derived by construction (suffix/pattern rules); count as
            # correct if the child contains the parent tokens (rule check).
            isa_total += 1
            child_tokens = dst.tokens
            it = iter(child_tokens)
            if all(tok in it for tok in src.tokens) or src.payload.get("pattern"):
                isa_correct += 1

    corr_total = corr_correct = 0
    for edge in onto.edges(EdgeType.CORRELATE):
        corr_total += 1
        pair = frozenset((node(edge.source).phrase, node(edge.target).phrase))
        if pair in gold_corr:
            corr_correct += 1

    inv_total = inv_correct = 0
    for edge in onto.edges(EdgeType.INVOLVE):
        src, dst = node(edge.source), node(edge.target)
        inv_total += 1
        if src.node_type == NodeType.EVENT:
            if (src.phrase, dst.phrase) in gold_involve or dst.phrase in src.phrase:
                inv_correct += 1
        else:  # topic involves concept: contained-by-construction
            if " ".join(dst.tokens) in " ".join(src.tokens):
                inv_correct += 1

    def ratio(c, t):
        return c / t if t else 1.0

    return {
        "isA": (isa_total, ratio(isa_correct, isa_total)),
        "correlate": (corr_total, ratio(corr_correct, corr_total)),
        "involve": (inv_total, ratio(inv_correct, inv_total)),
    }


def test_table1_nodes_and_growth(benchmark, pipeline_factory, bench_days,
                                 bench_world):
    def run():
        pipe_full = pipeline_factory(bench_days)
        pipe_partial = pipeline_factory(bench_days[:-1])
        return pipe_full, pipe_partial

    pipe_full, pipe_partial = benchmark.pedantic(run, iterations=1, rounds=1)
    stats = pipe_full.ontology.stats()
    prev = pipe_partial.ontology.stats()

    rows = [
        (ntype, {
            "Quantity": float(stats[ntype]),
            "Grow/day": float(stats[ntype] - prev[ntype]),
        })
        for ntype in ("category", "concept", "topic", "event", "entity")
    ]
    table = render_table(
        "Table 1: nodes in the attention ontology (synthetic world scale)",
        ["Quantity", "Grow/day"], rows, precision=0,
    )
    write_result("table1_nodes", table)

    assert stats["concept"] > 0 and stats["event"] > 0 and stats["topic"] > 0
    # The log stream keeps surfacing attentions: more days, >= nodes.
    assert stats["concept"] >= prev["concept"]
    assert stats["event"] >= prev["event"]
    # Entities dominate counts, as in the paper.
    assert stats["entity"] >= stats["topic"]


def test_table2_edges_and_accuracy(benchmark, pipeline_factory, bench_days,
                                   bench_world):
    pipe = benchmark.pedantic(
        lambda: pipeline_factory(bench_days), iterations=1, rounds=1
    )
    accuracy = _edge_accuracy(pipe, bench_world)
    rows = [
        (etype, {"Quantity": float(count), "Accuracy": acc})
        for etype, (count, acc) in accuracy.items()
    ]
    table = render_table(
        "Table 2: edges in the attention ontology (count / precision vs gold)",
        ["Quantity", "Accuracy"], rows, precision=3,
    )
    write_result("table2_edges", table)

    for etype, (count, acc) in accuracy.items():
        assert count > 0, f"no {etype} edges"
    # Paper shape: involve is the most precise relation (99%+ vs 95%+).
    assert accuracy["involve"][1] >= 0.8
    assert accuracy["isA"][1] >= 0.6
