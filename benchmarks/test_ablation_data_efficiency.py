"""Ablation — training-data efficiency of GCTSP-Net vs Q-LSTM-CRF.

The paper stresses that its weak-supervision strategies make training data
cheap ("minimum manual labelling efforts").  This bench sweeps the training
set size and reports test F1 for GCTSP-Net and the strongest sequence
baseline: the structural prior of the QTIG should make GCTSP-Net the more
data-efficient learner at small training sizes.
"""

from __future__ import annotations

import pytest

from repro.baselines import QueryLstmCrf
from repro.config import GCTSPConfig
from repro.core.gctsp import GCTSPNet, prepare_example
from repro.eval import evaluate_phrases
from repro.eval.reporting import render_table

from bench_common import SCALE, write_result

SIZES = (10, 30, 60) if SCALE == "small" else (10, 30, 60, 120)


def _gctsp_f1(train_raw, test_raw, extractor, parser, epochs):
    train = [prepare_example(e.queries, e.titles, extractor, parser,
                             gold_tokens=e.gold_tokens) for e in train_raw]
    test = [prepare_example(e.queries, e.titles, extractor, parser,
                            gold_tokens=e.gold_tokens) for e in test_raw]
    model = GCTSPNet(GCTSPConfig(num_layers=3, hidden_size=24, num_bases=4,
                                 epochs=epochs, learning_rate=0.015, seed=0))
    model.fit(train)
    preds = [model.extract_phrase(e) for e in test]
    return evaluate_phrases(preds, [e.gold_tokens for e in test_raw]).f1


def _lstm_f1(train_raw, test_raw, epochs):
    model = QueryLstmCrf(embed_dim=32, hidden=25)
    model.fit_examples(train_raw, epochs=epochs, lr=0.03)
    preds = [model.extract(e.queries, e.titles) for e in test_raw]
    return evaluate_phrases(preds, [e.gold_tokens for e in test_raw]).f1


def test_ablation_data_efficiency(benchmark, cmd_split, bench_extractor,
                                  bench_parser):
    train, _dev, test = cmd_split
    test = test[:25]
    epochs = 8 if SCALE == "small" else 10

    def run():
        rows = []
        for size in SIZES:
            rows.append((
                f"n={size}",
                {
                    "GCTSP-Net F1": _gctsp_f1(train[:size], test,
                                              bench_extractor, bench_parser,
                                              epochs),
                    "Q-LSTM-CRF F1": _lstm_f1(train[:size], test, epochs),
                },
            ))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    table = render_table(
        "Ablation: test F1 vs number of training examples",
        ["GCTSP-Net F1", "Q-LSTM-CRF F1"], rows,
    )
    write_result("ablation_data_efficiency", table)

    scores = dict(rows)
    # GCTSP-Net must be competitive at every size and not degrade with data.
    smallest = scores[f"n={SIZES[0]}"]
    largest = scores[f"n={SIZES[-1]}"]
    assert smallest["GCTSP-Net F1"] >= smallest["Q-LSTM-CRF F1"] - 0.1
    assert largest["GCTSP-Net F1"] >= smallest["GCTSP-Net F1"] - 0.05
