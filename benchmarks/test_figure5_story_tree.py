"""Figure 5 — story-tree formation for a developing story.

The paper shows a "China-US Trade" story tree: 18 events clustered into
coherent branches and ordered by article time.  The bench builds the tree
for the synthetic world's richest topic and checks the structural claims:
related events cluster onto branches, branches are chronological, and
unrelated events stay out.

The story-*serving* bench then routes the same event pool through a
4-shard :class:`ClusterService`'s ``track_events`` / ``follow_ups``
endpoints (ROADMAP "cluster-aware recsys/story benchmarks") and asserts
the responses are byte-identical (``rpc.dumps``) to a single-store
service replica, recording the result in
``results/BENCH_tagging.json``.
"""

from __future__ import annotations

import pytest

from repro.apps.story_tree import EventRecord, StoryTreeBuilder
from repro.cluster import ClusterService
from repro.core.ontology import AttentionOntology
from repro.serving import OntologyService
from repro.serving.rpc import dumps
from repro.text.embeddings import WordEmbeddings
from repro.text.tokenizer import tokenize

from bench_common import write_json, write_result


@pytest.fixture(scope="module")
def event_pool(bench_world):
    records = []
    for event in bench_world.events.values():
        records.append(
            EventRecord(
                phrase=event.phrase,
                trigger=event.trigger,
                entities=[event.entity],
                day=event.day,
                location=event.location,
            )
        )
    return records


@pytest.fixture(scope="module")
def builder(bench_world):
    corpus = [tokenize(e.phrase) for e in bench_world.events.values()]
    embeddings = WordEmbeddings(dim=24, window=3).train(corpus)
    return StoryTreeBuilder(embeddings=embeddings, cluster_threshold=1.0)


def test_figure5_story_tree(benchmark, event_pool, builder, bench_world):
    # Seed with an event from the largest topic (the richest story).
    topic = max(bench_world.topics.values(), key=lambda t: len(t.event_ids))
    seed_event = bench_world.events[topic.event_ids[0]]
    seed = next(r for r in event_pool if r.phrase == seed_event.phrase)

    tree = benchmark.pedantic(
        lambda: builder.build(seed, event_pool, require_common_entity=False,
                              require_same_trigger=True),
        iterations=1, rounds=1,
    )
    write_result("figure5_story_tree", tree.render())

    # Structural claims of Figure 5.
    assert tree.num_events >= 2
    for branch in tree.branches:
        days = [e.day for e in branch]
        assert days == sorted(days), "branch must be chronological"
    # Root is the earliest event of the story.
    all_days = [e.day for b in tree.branches for e in b]
    assert tree.root.event.day == min(all_days)
    # Same-trigger retrieval keeps the story coherent.
    assert all(e.trigger == seed.trigger for b in tree.branches for e in b)


def test_story_endpoints_through_cluster(event_pool, bench_world):
    """Acceptance gate for the cluster-aware story bench: routing the
    day's events through ClusterService.track_events and reading
    follow_ups is byte-identical to the single-store service."""
    single = OntologyService(AttentionOntology())
    cluster = ClusterService(num_shards=4)
    by_day = sorted(event_pool, key=lambda e: (e.day, e.phrase))
    assert cluster.track_events(by_day) == single.track_events(by_day)

    read_phrases = [e.phrase for e in by_day[:12]]
    verified = 0
    with_follow_ups = 0
    for phrase in read_phrases:
        single_ups = single.follow_ups(phrase, limit=3)
        cluster_ups = cluster.follow_ups(phrase, limit=3)
        assert dumps(cluster_ups) == dumps(single_ups)
        verified += 1
        if cluster_ups:
            with_follow_ups += 1
    assert with_follow_ups > 0  # developing stories yield fresh events

    stats = cluster.stats()
    assert stats["stories_tracked"] == single.stats()["stories_tracked"]
    write_json("BENCH_tagging", {
        "cluster_story": {
            "num_shards": cluster.num_shards,
            "events_tracked": len(by_day),
            "stories_tracked": stats["stories_tracked"],
            "follow_up_reads_verified": verified,
            "reads_with_follow_ups": with_follow_ups,
            "byte_identical": True,
        },
    })
