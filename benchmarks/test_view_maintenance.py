"""Incremental view maintenance cost (DESIGN.md §13).

The refresh-cost invariant behind the maintained-view layer: folding a
delta into the serving views costs time proportional to the **delta's
row fan-in**, never to the corpus (or the cache working set, which the
old invalidate-and-recompute design churned on every version bump).

Measured here, on two corpus sizes (~4x apart):

* per-delta ``refresh()`` latency for small deltas vs ~10x-larger
  deltas on the same corpus (``delta_scaling_ratio`` — should grow);
* the same small-delta refresh on the small corpus vs the large corpus
  (``corpus_scaling_ratio`` — should stay flat);
* full ``rehydrate()`` (from-scratch rebuild, the repair path) on both
  corpora — the cost incremental maintenance avoids paying per delta;
* ``views_identical`` — after the whole stream, every maintained view
  must equal its from-scratch recompute ``rpc.dumps``-byte-identically;
  CI fails the job when this flag is missing or false.

Everything lands in the ``incremental_views`` section of
``results/BENCH_tagging.json``.  Identity is the hard gate; timing
assertions arm only on >=2 cores (like the other throughput gates) and
with generous margins — the *recorded* ratios are the trackable signal.
"""

from __future__ import annotations

import os
import statistics
import time

from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.serving import OntologyService
from repro.serving.rpc import dumps

from bench_common import SCALE, write_json

_ADJS = ["solar", "lunar", "hyper", "rapid", "silent", "crimson",
         "golden", "arctic", "neon", "quiet"]
_NOUNS = ["cars", "movies", "phones", "novels", "recipes", "trails",
          "startups", "satellites", "teams", "gadgets"]


def _commit_growth(onto: AttentionOntology, concepts: int, tag: str):
    """One pipeline-shaped delta: ``concepts`` concepts, each with three
    entities, isA edges and an alias (~8 node/edge/alias ops per
    concept, deterministic phrasing)."""
    onto.begin_delta(tag)
    for index in range(concepts):
        adj = _ADJS[(len(onto.store) + index) % len(_ADJS)]
        noun = _NOUNS[(len(onto.store) * 7 + index) % len(_NOUNS)]
        stem = f"{adj} {noun} {tag} {index}"
        concept = onto.add_node(NodeType.CONCEPT, stem)
        onto.add_alias(concept.node_id, f"best {stem}")
        for sub in range(3):
            entity = onto.add_node(NodeType.ENTITY, f"{stem} model {sub}")
            onto.add_edge(concept.node_id, entity.node_id, EdgeType.ISA)
    return onto.commit_delta()


def _build_service(corpus_concepts: int, tag: str):
    """Producer + serving replica grown to ``corpus_concepts`` concepts
    through the delta stream (the replica's views fold every batch)."""
    producer = AttentionOntology()
    service = OntologyService(producer)
    grown = 0
    batch = 25
    while grown < corpus_concepts:
        step = min(batch, corpus_concepts - grown)
        service.refresh([_commit_growth(producer, step, f"{tag}-b{grown}")])
        grown += step
    return producer, service


def _timed_refreshes(producer, service, rounds: int, concepts: int,
                     tag: str) -> "list[float]":
    out = []
    for round_no in range(rounds):
        delta = _commit_growth(producer, concepts, f"{tag}-r{round_no}")
        start = time.perf_counter()
        service.refresh([delta])
        out.append(time.perf_counter() - start)
    return out


def _ms(seconds: float) -> float:
    return round(seconds * 1e3, 4)


def test_view_maintenance_cost_tracks_delta_not_corpus():
    scale = 1 if SCALE == "small" else 3
    small_concepts, large_concepts = 60 * scale, 240 * scale
    rounds = 20 if SCALE == "small" else 40

    producer_small, service_small = _build_service(small_concepts, "small")
    producer_large, service_large = _build_service(large_concepts, "large")
    small_nodes = len(producer_small.store)
    large_nodes = len(producer_large.store)

    # --- small vs large deltas on the small corpus -------------------
    tiny = _timed_refreshes(producer_small, service_small, rounds, 1, "tiny")
    big = _timed_refreshes(producer_small, service_small, rounds // 4,
                           10, "big")
    tiny_ms = statistics.median(tiny) * 1e3
    big_ms = statistics.median(big) * 1e3
    delta_ratio = big_ms / max(tiny_ms, 1e-9)

    # --- the same small delta on the 4x corpus -----------------------
    tiny_large = _timed_refreshes(producer_large, service_large, rounds,
                                  1, "tiny")
    tiny_large_ms = statistics.median(tiny_large) * 1e3
    corpus_ratio = tiny_large_ms / max(tiny_ms, 1e-9)

    # --- the cost incremental maintenance avoids: full rebuild -------
    rebuild_ms = {}
    for label, service in (("small", service_small),
                           ("large", service_large)):
        start = time.perf_counter()
        service.views.rehydrate(service.version, count=False)
        rebuild_ms[label] = _ms(time.perf_counter() - start)

    # --- identity: maintained views == from-scratch recompute --------
    views_identical = True
    for service in (service_small, service_large):
        for _name, view in service.views.items():
            if dumps(view.materialized()) != dumps(view.recompute()):
                views_identical = False

    view_stats = service_large.stats()["views"]
    write_json("BENCH_tagging", {
        "incremental_views": {
            "views_identical": views_identical,
            "corpus_nodes": {"small": small_nodes, "large": large_nodes},
            "refresh_ms": {
                "small_delta": round(tiny_ms, 4),
                "large_delta": round(big_ms, 4),
                "small_delta_on_large_corpus": round(tiny_large_ms, 4),
            },
            "delta_scaling_ratio": round(delta_ratio, 2),
            "corpus_scaling_ratio": round(corpus_ratio, 2),
            "rebuild_ms": rebuild_ms,
            "deltas_folded": view_stats["deltas_folded"],
            "rows_folded": view_stats["rows_folded"],
            "maintain_p95_ms": round(view_stats["maintain_p95"] * 1e3, 4),
        },
    })
    print(f"\nviews: small delta {tiny_ms:.3f}ms, 10x delta {big_ms:.3f}ms "
          f"(x{delta_ratio:.1f}); same delta on 4x corpus "
          f"{tiny_large_ms:.3f}ms (x{corpus_ratio:.2f}); rebuild "
          f"{rebuild_ms['large']:.1f}ms")

    # Identity is structural, never timing-gated.
    assert views_identical, \
        "a maintained view diverged from its from-scratch recompute"
    # Timing gates arm only off contended single cores, with slack: a
    # delta fold must stay far cheaper than the rebuild it replaces, and
    # corpus growth must not scale fold cost the way it scales rebuilds.
    if (os.cpu_count() or 1) >= 2:
        assert tiny_large_ms < rebuild_ms["large"], \
            (f"small-delta refresh {tiny_large_ms:.3f}ms not cheaper than "
             f"full rebuild {rebuild_ms['large']:.3f}ms")
        assert corpus_ratio < 3.0, \
            (f"fold cost scaled with the corpus (x{corpus_ratio:.2f} on a "
             f"4x corpus) — refresh is no longer proportional to the delta")
