"""Figures 6-7 — feed-recommendation CTR comparisons.

Figure 6 (paper): recommending with all tag types lifts mean CTR from
12.47% (category+entity only) to 13.02%.
Figure 7 (paper): mean CTR by tag type — topic 16.18% > event 14.78% >
entity 12.93% > concept 11.82% > category 9.04%; the event curve is the
least stable day-to-day.

The simulator (see DESIGN.md for the substitution) reproduces the arm
ordering, the all-tags uplift, and the event-curve volatility.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.recsys import (
    FeedSimulator,
    default_figure6_arms,
    default_figure7_arms,
)
from repro.eval.reporting import render_series

from bench_common import SCALE, write_result


@pytest.fixture(scope="module")
def simulator(bench_world):
    users = 600 if SCALE == "full" else 300
    return FeedSimulator(bench_world, num_users=users, seed=0)


def _mean_ctr(results):
    clicks = sum(r.clicks for r in results)
    impressions = sum(r.impressions for r in results)
    return clicks / impressions if impressions else 0.0


def test_figure6_all_tags_vs_category_entity(benchmark, simulator, bench_world):
    arms = default_figure6_arms()
    results = benchmark.pedantic(
        lambda: simulator.compare_arms(arms), iterations=1, rounds=1
    )
    days = [f"day {d}" for d in range(bench_world.config.num_days)]
    series = {
        name: [100.0 * r.ctr for r in rs] for name, rs in results.items()
    }
    figure = render_series(
        "Figure 6: CTR with all tag types vs category+entity (percent)",
        days, series, precision=2, unit="%",
    )
    write_result("figure6_ctr", figure)

    all_tags = _mean_ctr(results["all types of tags"])
    baseline = _mean_ctr(results["category + entity"])
    assert all_tags > baseline, "attention tags must lift CTR"
    # Paper uplift is ~0.55pp on a 12.5% base (~4% relative); require a
    # positive but sane relative uplift.
    assert 1.0 < all_tags / baseline < 2.0


def test_figure7_ctr_by_tag_type(benchmark, simulator, bench_world):
    arms = default_figure7_arms()
    results = benchmark.pedantic(
        lambda: simulator.compare_arms(arms), iterations=1, rounds=1
    )
    days = [f"day {d}" for d in range(bench_world.config.num_days)]
    series = {
        name: [100.0 * r.ctr for r in rs] for name, rs in results.items()
    }
    figure = render_series(
        "Figure 7: CTR by tag type (percent)", days, series,
        precision=2, unit="%",
    )
    write_result("figure7_ctr_by_tag", figure)

    means = {name: _mean_ctr(rs) for name, rs in results.items()}
    # Paper ordering: topic > event > entity > concept > category, with
    # concept/entity close; require the robust parts of the ordering.
    assert means["topic"] > means["entity"]
    assert means["event"] > means["entity"]
    assert means["entity"] > means["category"]
    assert means["concept"] > means["category"]

    # Event curve is less stable than the topic curve (paper's observation).
    def volatility(rs):
        ctrs = [r.ctr for r in rs if r.impressions > 0]
        return float(np.std(ctrs)) if len(ctrs) > 1 else 0.0

    assert volatility(results["event"]) >= volatility(results["topic"])
