"""Figures 6-7 — feed-recommendation CTR comparisons.

Figure 6 (paper): recommending with all tag types lifts mean CTR from
12.47% (category+entity only) to 13.02%.
Figure 7 (paper): mean CTR by tag type — topic 16.18% > event 14.78% >
entity 12.93% > concept 11.82% > category 9.04%; the event curve is the
least stable day-to-day.

The simulator (see DESIGN.md for the substitution) reproduces the arm
ordering, the all-tags uplift, and the event-curve volatility.  Since
the replication PR the benches run their ontology lookups through a
4-shard :class:`ClusterService` (ROADMAP "cluster-aware recsys/story
benchmarks"): article concept tags come from scatter-gather
``concepts_of_entity`` reads over hash-partitioned replicas, and the
cluster-vs-single-store CTR identity is asserted and recorded in
``results/BENCH_tagging.json``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.recsys import (
    ArmConfig,
    FeedSimulator,
    default_figure6_arms,
    default_figure7_arms,
)
from repro.cluster import ClusterService
from repro.core.ontology import AttentionOntology, EdgeType, NodeType
from repro.eval.reporting import render_series
from repro.serving import OntologyService

from bench_common import SCALE, write_json, write_result


def _users() -> int:
    return 600 if SCALE == "full" else 300


@pytest.fixture(scope="module")
def gold_tag_delta(bench_world):
    """The world's gold concept-entity ontology as one recorded delta
    (the stream a cluster shards); gold tags keep the figures' CTR
    identical to the no-ontology default (the recsys tests assert it)."""
    onto = AttentionOntology()
    onto.begin_delta("gold-tags")
    for name in sorted(bench_world.concepts):
        concept = bench_world.concepts[name]
        cnode = onto.add_node(NodeType.CONCEPT, concept.phrase)
        for member in concept.members:
            enode = onto.add_node(NodeType.ENTITY, member)
            onto.add_edge(cnode.node_id, enode.node_id, EdgeType.ISA)
    delta = onto.commit_delta()
    return onto, delta


@pytest.fixture(scope="module")
def tag_cluster(gold_tag_delta):
    _onto, delta = gold_tag_delta
    return ClusterService(num_shards=4, deltas=[delta])


@pytest.fixture(scope="module")
def simulator(bench_world, tag_cluster):
    return FeedSimulator(bench_world, num_users=_users(), seed=0,
                         ontology=tag_cluster)


def _mean_ctr(results):
    clicks = sum(r.clicks for r in results)
    impressions = sum(r.impressions for r in results)
    return clicks / impressions if impressions else 0.0


def test_figure6_all_tags_vs_category_entity(benchmark, simulator, bench_world):
    arms = default_figure6_arms()
    results = benchmark.pedantic(
        lambda: simulator.compare_arms(arms), iterations=1, rounds=1
    )
    days = [f"day {d}" for d in range(bench_world.config.num_days)]
    series = {
        name: [100.0 * r.ctr for r in rs] for name, rs in results.items()
    }
    figure = render_series(
        "Figure 6: CTR with all tag types vs category+entity (percent)",
        days, series, precision=2, unit="%",
    )
    write_result("figure6_ctr", figure)

    all_tags = _mean_ctr(results["all types of tags"])
    baseline = _mean_ctr(results["category + entity"])
    assert all_tags > baseline, "attention tags must lift CTR"
    # Paper uplift is ~0.55pp on a 12.5% base (~4% relative); require a
    # positive but sane relative uplift.
    assert 1.0 < all_tags / baseline < 2.0


def test_figure7_ctr_by_tag_type(benchmark, simulator, bench_world):
    arms = default_figure7_arms()
    results = benchmark.pedantic(
        lambda: simulator.compare_arms(arms), iterations=1, rounds=1
    )
    days = [f"day {d}" for d in range(bench_world.config.num_days)]
    series = {
        name: [100.0 * r.ctr for r in rs] for name, rs in results.items()
    }
    figure = render_series(
        "Figure 7: CTR by tag type (percent)", days, series,
        precision=2, unit="%",
    )
    write_result("figure7_ctr_by_tag", figure)

    means = {name: _mean_ctr(rs) for name, rs in results.items()}
    # Paper ordering: topic > event > entity > concept > category, with
    # concept/entity close; require the robust parts of the ordering.
    assert means["topic"] > means["entity"]
    assert means["event"] > means["entity"]
    assert means["entity"] > means["category"]
    assert means["concept"] > means["category"]

    # Event curve is less stable than the topic curve (paper's observation).
    def volatility(rs):
        ctrs = [r.ctr for r in rs if r.impressions > 0]
        return float(np.std(ctrs)) if len(ctrs) > 1 else 0.0

    assert volatility(results["event"]) >= volatility(results["topic"])


def test_cluster_routed_ctr_identical_to_single_store(bench_world,
                                                      gold_tag_delta,
                                                      tag_cluster):
    """Acceptance gate for the cluster-aware CTR benches: the simulator
    routed through 4-shard scatter-gather replicas produces exactly the
    per-day impression/click numbers of a single-store service replica
    (fresh simulators with identical seeds, so RNG streams align)."""
    onto, _delta = gold_tag_delta
    single_service = OntologyService(onto)
    arms = [default_figure6_arms()[0], ArmConfig("concept", ("concept",))]
    users = max(100, _users() // 3)  # smaller: this arm set runs twice

    def run(ontology):
        sim = FeedSimulator(bench_world, num_users=users, seed=0,
                            ontology=ontology)
        return {
            name: [(r.day, r.impressions, r.clicks) for r in rs]
            for name, rs in sim.compare_arms(arms).items()
        }

    via_cluster = run(tag_cluster)
    via_single = run(single_service)
    assert via_cluster == via_single

    # Every entity's concept expansion scatter-gathers identically.
    entities = sorted(bench_world.entities)
    for entity in entities:
        assert tag_cluster.concepts_of_entity(entity) == \
            single_service.concepts_of_entity(entity)

    clicks = sum(c for _d, _i, c in via_cluster["all types of tags"])
    impressions = sum(i for _d, i, _c in via_cluster["all types of tags"])
    write_json("BENCH_tagging", {
        "cluster_recsys": {
            "num_shards": tag_cluster.num_shards,
            "simulated_users": users,
            "arms_verified": sorted(via_cluster),
            "entities_verified": len(entities),
            "identical_to_single_store": True,
            "all_tags_mean_ctr": round(clicks / impressions, 4)
            if impressions else 0.0,
        },
    })
