"""Ablation benches for the design choices DESIGN.md calls out.

* QTIG edge policy: first-edge-kept (paper) vs keep-all-edges — the paper
  reports first-edge-kept "gives better performance for phrase mining".
* Decoding: ATSP-decoding vs naive node-id ordering of positive nodes.
* R-GCN depth and basis count: the paper's 5-layer/B=5 vs shallow variants.
"""

from __future__ import annotations

import pytest

from repro.config import GCTSPConfig
from repro.core.gctsp import GCTSPNet, prepare_example
from repro.eval import evaluate_phrases
from repro.eval.reporting import render_table

from bench_common import SCALE, prepare, write_result

COLUMNS = ["EM", "F1", "COV"]


@pytest.fixture(scope="module")
def small_split(cmd_split, bench_extractor, bench_parser):
    train, _dev, test = cmd_split
    cap_train = 80 if SCALE == "full" else 60
    cap_test = 40 if SCALE == "full" else 25
    return train[:cap_train], test[:cap_test]


def _train_and_eval(config, train_raw, test_raw, extractor, parser,
                    keep_all_edges=False, use_atsp=True):
    train = [
        prepare_example(e.queries, e.titles, extractor, parser,
                        gold_tokens=e.gold_tokens, keep_all_edges=keep_all_edges)
        for e in train_raw
    ]
    test = [
        prepare_example(e.queries, e.titles, extractor, parser,
                        gold_tokens=e.gold_tokens, keep_all_edges=keep_all_edges)
        for e in test_raw
    ]
    model = GCTSPNet(config)
    model.fit(train)
    preds = []
    for example in test:
        positives = model.predict_positive_nodes(example)
        if use_atsp:
            preds.append(model.order_nodes(example.graph, positives))
        else:
            preds.append([example.graph.tokens[i] for i in sorted(positives)])
    golds = [e.gold_tokens for e in test_raw]
    return evaluate_phrases(preds, golds).as_row()


@pytest.fixture(scope="module")
def ablation_config():
    epochs = 14 if SCALE == "full" else 12
    return GCTSPConfig(num_layers=3, hidden_size=24, num_bases=4,
                       epochs=epochs, learning_rate=0.015, seed=0)


def test_ablation_qtig_edge_policy(benchmark, small_split, bench_extractor,
                                   bench_parser, ablation_config):
    train, test = small_split

    def run():
        first_kept = _train_and_eval(ablation_config, train, test,
                                     bench_extractor, bench_parser,
                                     keep_all_edges=False)
        keep_all = _train_and_eval(ablation_config, train, test,
                                   bench_extractor, bench_parser,
                                   keep_all_edges=True)
        return [("first-edge-kept (paper)", first_kept),
                ("keep-all-edges", keep_all)]

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    table = render_table("Ablation: QTIG edge policy", COLUMNS, rows)
    write_result("ablation_qtig_edges", table)
    scores = dict(rows)
    # Both must work; the paper's policy should not lose badly.
    assert scores["first-edge-kept (paper)"]["F1"] >= \
        scores["keep-all-edges"]["F1"] - 0.1


def test_ablation_atsp_vs_naive_ordering(benchmark, small_split,
                                         bench_extractor, bench_parser,
                                         ablation_config):
    train, test = small_split

    def run():
        atsp = _train_and_eval(ablation_config, train, test, bench_extractor,
                               bench_parser, use_atsp=True)
        naive = _train_and_eval(ablation_config, train, test, bench_extractor,
                                bench_parser, use_atsp=False)
        return [("ATSP-decoding (paper)", atsp), ("node-id order", naive)]

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    table = render_table("Ablation: node ordering strategy", COLUMNS, rows)
    write_result("ablation_decoding", table)
    scores = dict(rows)
    # ATSP ordering must not be worse: token order errors only hurt EM.
    assert scores["ATSP-decoding (paper)"]["EM"] >= scores["node-id order"]["EM"] - 0.05


def test_ablation_rgcn_depth_and_bases(benchmark, small_split, bench_extractor,
                                       bench_parser):
    train, test = small_split
    epochs = 14 if SCALE == "full" else 12

    variants = [
        ("1-layer", GCTSPConfig(num_layers=1, hidden_size=24, num_bases=4,
                                epochs=epochs, learning_rate=0.015, seed=0)),
        ("3-layer B=4", GCTSPConfig(num_layers=3, hidden_size=24, num_bases=4,
                                    epochs=epochs, learning_rate=0.015, seed=0)),
        ("3-layer B=1", GCTSPConfig(num_layers=3, hidden_size=24, num_bases=1,
                                    epochs=epochs, learning_rate=0.015, seed=0)),
    ]

    def run():
        return [
            (name, _train_and_eval(cfg, train, test, bench_extractor, bench_parser))
            for name, cfg in variants
        ]

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    table = render_table("Ablation: R-GCN depth and basis count", COLUMNS, rows)
    write_result("ablation_rgcn", table)
    scores = dict(rows)
    # Depth matters: message passing needs >1 layer to use graph structure.
    assert scores["3-layer B=4"]["F1"] >= scores["1-layer"]["F1"] - 0.05
