"""Table 7 — event key-element recognition: F1-macro / micro / weighted.

Paper numbers:

    LSTM        0.2108  0.5532  0.6563
    LSTM-CRF    0.2610  0.6468  0.7238
    GCTSP-Net   0.6291  0.9438  0.9331

Shape: GCTSP-Net dominates all three metrics; the CRF helps the LSTM.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LstmCrfTagger, LstmRoleTagger
from repro.core.gctsp import KEY_ELEMENT_CLASSES, prepare_example
from repro.eval.metrics import multiclass_f1
from repro.eval.reporting import render_table

from bench_common import SCALE, write_result

COLUMNS = ["F1-macro", "F1-micro", "F1-weighted"]
NUM_CLASSES = len(KEY_ELEMENT_CLASSES)


def _role_labels(tokens, token_roles):
    index = {c: i for i, c in enumerate(KEY_ELEMENT_CLASSES)}
    return [index.get(token_roles.get(t, "other"), 0) for t in tokens]


@pytest.fixture(scope="module")
def sequence_data(emd_split):
    """Per-title token/label sequences for the LSTM baselines."""
    train, _dev, test = emd_split
    def flatten(examples):
        seqs, labels = [], []
        for e in examples:
            for title in e.titles:
                seqs.append(title)
                labels.append(_role_labels(title, e.token_roles))
        return seqs, labels
    return flatten(train), flatten(test), test


def test_table7_key_elements(benchmark, sequence_data, key_element_gctsp,
                             bench_extractor, bench_parser):
    (train_seqs, train_labels), (test_seqs, test_labels), test_examples = sequence_data
    cap = 300 if SCALE == "full" else 120
    epochs = 8 if SCALE == "full" else 4

    lstm = LstmRoleTagger(num_classes=NUM_CLASSES, embed_dim=32, hidden=25)
    lstm.fit(train_seqs[:cap], train_labels[:cap], epochs=epochs, lr=0.03)
    lstm_crf = LstmCrfTagger(embed_dim=32, hidden=25, num_tags=NUM_CLASSES)
    lstm_crf.fit(train_seqs[:cap], train_labels[:cap], epochs=epochs, lr=0.03)

    def evaluate_all():
        rows = []
        for name, predict in (
            ("LSTM", lstm.predict),
            ("LSTM-CRF", lstm_crf.predict),
        ):
            y_true: list[int] = []
            y_pred: list[int] = []
            for seq, labels in zip(test_seqs, test_labels):
                y_true.extend(labels)
                y_pred.extend(predict(seq))
            rows.append((name, multiclass_f1(y_true, y_pred, NUM_CLASSES)))

        # GCTSP-Net predicts over QTIG nodes; score node-level labels.
        y_true, y_pred = [], []
        for example in test_examples:
            prepared = prepare_example(
                example.queries, example.titles, bench_extractor, bench_parser,
                token_roles=example.token_roles,
            )
            pred = key_element_gctsp.predict_labels(prepared)
            y_true.extend(prepared.labels[2:].tolist())
            y_pred.extend(pred[2:].tolist())
        rows.append(("GCTSP-Net", multiclass_f1(y_true, y_pred, NUM_CLASSES)))
        return rows

    rows = benchmark.pedantic(evaluate_all, iterations=1, rounds=1)
    table = render_table(
        "Table 7: event key-element recognition (4-class, node/token level)",
        COLUMNS, rows,
    )
    write_result("table7_key_elements", table)

    scores = dict(rows)
    assert scores["GCTSP-Net"]["F1-macro"] >= scores["LSTM-CRF"]["F1-macro"]
    assert scores["GCTSP-Net"]["F1-micro"] >= scores["LSTM"]["F1-micro"]
    assert scores["GCTSP-Net"]["F1-micro"] > 0.7
