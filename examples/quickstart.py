#!/usr/bin/env python
"""Quickstart: build an Attention Ontology from synthetic click logs.

Walks the full GIANT flow in ~30 seconds:

1. build a ground-truth world and generate a few days of search click logs;
2. train a small GCTSP-Net on the Concept Mining Dataset;
3. run the pipeline: cluster -> mine -> normalise -> derive -> link;
4. poke at the resulting ontology.

Run:  python examples/quickstart.py
"""

from repro import GiantPipeline, WorldConfig, build_world
from repro.config import GCTSPConfig
from repro.core.features import NodeFeatureExtractor
from repro.core.gctsp import GCTSPNet, prepare_example
from repro.core.ontology import NodeType
from repro.datasets import build_cmd, split_dataset
from repro.synth.querylog import QueryLogGenerator, build_click_graph
from repro.text.dependency import DependencyParser


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A synthetic world and its click logs (see DESIGN.md: this stands
    #    in for the paper's proprietary Tencent query logs).
    # ------------------------------------------------------------------
    world = build_world(WorldConfig(num_days=4, seed=0))
    days = QueryLogGenerator(world).generate_days()
    graph = build_click_graph(days)
    sessions = [s for d in days for s in d.sessions]
    print(f"world: {len(world.concepts)} concepts, {len(world.entities)} entities, "
          f"{len(world.events)} events")
    print(f"click graph: {graph.num_queries} queries, {graph.num_docs} docs, "
          f"{graph.num_edges} edges")

    # ------------------------------------------------------------------
    # 2. Train the GCTSP-Net on weakly-supervised concept examples.
    # ------------------------------------------------------------------
    pos_tagger, ner_tagger = world.register_text_models()
    extractor = NodeFeatureExtractor(pos_tagger, ner_tagger)
    parser = DependencyParser(pos_tagger)

    cmd = build_cmd(world, examples_per_concept=2)
    train, _dev, _test = split_dataset(cmd)
    train_examples = [
        prepare_example(e.queries, e.titles, extractor, parser,
                        gold_tokens=e.gold_tokens)
        for e in train[:50]
    ]
    model = GCTSPNet(GCTSPConfig(num_layers=3, hidden_size=24, num_bases=4,
                                 epochs=8, learning_rate=0.02))
    losses = model.fit(train_examples)
    print(f"GCTSP-Net trained: loss {losses[0]:.3f} -> {losses[-1]:.3f}")

    # ------------------------------------------------------------------
    # 3. Run the full pipeline.
    # ------------------------------------------------------------------
    pipeline = GiantPipeline(
        graph, pos_tagger, ner_tagger,
        concept_model=model,
        categories=sorted({c[2] for c in world.categories}),
    )
    ontology = pipeline.run(sessions=sessions)
    print("\nontology:", ontology.stats())

    # ------------------------------------------------------------------
    # 4. Explore it.
    # ------------------------------------------------------------------
    print("\nsample concepts:")
    for node in ontology.nodes(NodeType.CONCEPT)[:5]:
        instances = [e.phrase for e in ontology.entities_of_concept(node.phrase)]
        print(f"  {node.phrase!r}  instances={instances[:3]}")

    print("\nsample topics:")
    for node in ontology.nodes(NodeType.TOPIC)[:3]:
        print(f"  {node.phrase!r}")


if __name__ == "__main__":
    main()
