#!/usr/bin/env python
"""Cluster serving: sharded stores, scatter-gather requests, worker pool.

Shows the cluster tier (DESIGN.md §6) end to end: a builder emits
OntologyDelta batches; a 4-shard ClusterService routes each batch to its
owning shards (with ghost replicas for cross-shard edges) and serves
tagging/query requests whose results are byte-identical to a single
store; a multi-process TaggingWorkerPool bootstraps replicas from a
compacted snapshot + tail deltas and fans a corpus across processes.

Run:  python examples/cluster_serving.py
"""

from repro import (
    ClusterService,
    GiantPipeline,
    OntologyService,
    TaggingWorkerPool,
    WorldConfig,
    build_world,
)
from repro.core.store import OntologyStore
from repro.synth.documents import DocumentGenerator
from repro.synth.querylog import QueryLogGenerator, build_click_graph


def main() -> None:
    world = build_world(WorldConfig(num_days=3, seed=0))
    days = QueryLogGenerator(world).generate_days()
    sessions = [s for d in days for s in d.sessions]
    pos_tagger, ner_tagger = world.register_text_models()

    # --- builder process: click logs -> ontology, emitted as deltas.
    pipeline = GiantPipeline(
        build_click_graph(days), pos_tagger, ner_tagger,
        categories=sorted({c[2] for c in world.categories}),
    )
    pipeline.run(sessions=sessions)
    print("builder ontology:", pipeline.ontology.stats())

    # --- 4-shard cluster: deltas routed per shard, reads scatter-gather.
    options = {"coherence_threshold": 0.02}
    cluster = ClusterService(num_shards=4, ner=ner_tagger,
                             tagger_options=options, deltas=pipeline.deltas)
    print(f"\ncluster at stream version {cluster.version}:")
    for line in cluster.stats()["shards"]:
        print(f"  shard {line['shard']}: owned={line['owned']} "
              f"ghosts={line['ghosts']} version={line['version']}")

    # --- identical results to a single-store service.
    single = OntologyService(pipeline.ontology, ner=ner_tagger,
                             tagger_options=options)
    corpus = DocumentGenerator(world).corpus(num_concept_docs=6,
                                             num_event_docs=3)
    assert cluster.tag_documents(corpus) == single.tag_documents(corpus)
    queries = [f"best {concept}" for concept in sorted(world.concepts)[:3]]
    assert cluster.interpret_queries(queries) == single.interpret_queries(queries)
    print("\nscatter-gather results identical to single store "
          f"({len(corpus)} docs, {len(queries)} queries)")
    for analysis in cluster.interpret_queries(queries):
        print(f"  {analysis.query!r} -> concepts={analysis.concepts[:1]} "
              f"rewrites={analysis.rewrites[:2]}")

    # --- multi-process tagging: snapshot + tail delta bootstrap.
    split = max(1, len(pipeline.deltas) // 2)
    snapshot = OntologyStore.bootstrap(
        None, pipeline.deltas[:split]).compact()
    with TaggingWorkerPool(pipeline.deltas, ner=ner_tagger,
                           snapshot=snapshot, tagger_options=options,
                           num_workers=2) as pool:
        tagged = pool.tag_documents(corpus)
        assert tagged == single.tag_documents(corpus)
        print(f"\nworker pool: {pool.num_workers} processes bootstrapped "
              f"from snapshot v{snapshot['store_version']} + "
              f"{len(pipeline.deltas) - split} tail deltas; "
              f"tagged {len(tagged)} docs identically")

    print("\ncluster stats:", {
        k: v for k, v in cluster.stats().items()
        if k not in ("ontology", "shards")
    })


if __name__ == "__main__":
    main()
