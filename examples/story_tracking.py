#!/usr/bin/env python
"""Story-tree formation: track a developing story (paper Section 4, Fig. 5).

Builds a story tree for the richest topic in the synthetic world — the
analogue of the paper's "China-US Trade" tree: correlated events retrieved
through the ontology, clustered by the Eq. 8 similarity, ordered by time.

Run:  python examples/story_tracking.py
"""

from repro import WorldConfig, build_world
from repro.apps.story_tree import EventRecord, StoryTreeBuilder
from repro.text.embeddings import WordEmbeddings
from repro.text.tokenizer import tokenize


def main() -> None:
    world = build_world(WorldConfig(num_days=10, seed=3, events_per_template=4))

    # Event records as the ontology's linking stage would produce them.
    pool = [
        EventRecord(
            phrase=event.phrase,
            trigger=event.trigger,
            entities=[event.entity],
            day=event.day,
            location=event.location,
        )
        for event in world.events.values()
    ]

    # Train phrase embeddings on the event corpus (stand-in for BERT/
    # skip-gram encodings; see DESIGN.md).
    embeddings = WordEmbeddings(dim=24).train(
        [tokenize(e.phrase) for e in world.events.values()]
    )
    builder = StoryTreeBuilder(embeddings=embeddings, cluster_threshold=1.0)

    # Seed with an event from the biggest story.
    topic = max(world.topics.values(), key=lambda t: len(t.event_ids))
    seed_phrase = world.events[topic.event_ids[0]].phrase
    seed = next(r for r in pool if r.phrase == seed_phrase)
    print(f"seed event: {seed.phrase!r} (day {seed.day})")
    print(f"ground-truth topic: {topic.phrase!r} "
          f"({len(topic.event_ids)} events)\n")

    tree = builder.build(seed, pool, require_common_entity=False,
                         require_same_trigger=True)
    print(tree.render())

    print("\nfollow-up recommendation: after reading the root event, "
          "recommend the next event on its branch:")
    for branch in tree.branches:
        if len(branch) >= 2:
            print(f"  read: {branch[0].phrase!r}")
            print(f"  next: {branch[1].phrase!r}")
            break


if __name__ == "__main__":
    main()
