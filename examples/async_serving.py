#!/usr/bin/env python
"""Async serving: concurrent client streams over one micro-batched replica.

Shows the asyncio tier (DESIGN.md §7): a builder emits OntologyDelta
batches; a sync serving replica catches up; an `AsyncOntologyService`
fronts it with a bounded request queue + micro-batcher so eight
concurrent client streams overlap instead of serializing — with
byte-identical results to the sync path.  The same replica then goes
behind the length-prefixed JSON RPC wrapper and serves a socket client,
and a delta refresh lands *between* batches while streams are in
flight.

Run:  python examples/async_serving.py
"""

import asyncio

from repro import AsyncOntologyService, GiantPipeline, OntologyService, \
    WorldConfig, build_world
from repro.core.ontology import AttentionOntology
from repro.serving.rpc import RpcClient, RpcServer, dumps
from repro.synth.documents import DocumentGenerator
from repro.synth.querylog import QueryLogGenerator, build_click_graph

NUM_STREAMS = 8


async def client_stream(aio, corpus, stream_id: int):
    """One simulated client: tags its documents in small chunks."""
    tagged = []
    for start in range(0, len(corpus), 3):
        tagged.extend(await aio.tag_documents(corpus[start:start + 3]))
    return stream_id, tagged


async def main_async(replica, ner, deltas, corpus, queries) -> None:
    sync_tagged = replica.tag_documents(corpus)

    async with AsyncOntologyService(replica, max_batch_size=16,
                                    max_delay=0.002) as aio:
        # --- eight concurrent client streams over one replica.
        results = await asyncio.gather(
            *[client_stream(aio, corpus, i) for i in range(NUM_STREAMS)])
        for stream_id, tagged in results:
            assert dumps(tagged) == dumps(sync_tagged), stream_id
        stats = await aio.stats()
        print(f"{NUM_STREAMS} concurrent streams, byte-identical to sync; "
              f"micro-batcher: {stats['async']}")

        # --- a delta refresh lands between batches, never mid-batch.
        tail, head = deltas[-1:], deltas[:-1]
        fresh = OntologyService(AttentionOntology(), ner=ner)
        fresh.refresh(head)
        async with AsyncOntologyService(fresh) as front:
            in_flight = [front.interpret_queries(queries) for _ in range(4)]
            applied = await front.refresh(tail)
            await asyncio.gather(*in_flight)
            print(f"refresh applied {applied} delta(s) between batches "
                  f"-> version {front.version}")

        # --- the same replica behind the JSON RPC socket.
        server = RpcServer(aio)
        host, port = await server.start()
        async with await RpcClient.connect(host, port) as client:
            remote = await client.call("tag_documents", corpus)
            assert dumps(remote) == dumps(sync_tagged)
            analyses = await client.call("interpret_queries", queries)
            print(f"RPC on {host}:{port} -> {len(remote)} docs tagged, "
                  f"{len(analyses)} queries interpreted, byte-identical")
            for analysis in analyses[:2]:
                print(f"  {analysis.query!r} -> "
                      f"concepts={analysis.concepts[:1]}")
        await server.close()


def main() -> None:
    world = build_world(WorldConfig(num_days=3, seed=0))
    days = QueryLogGenerator(world).generate_days()
    sessions = [s for d in days for s in d.sessions]
    pos_tagger, ner_tagger = world.register_text_models()

    pipeline = GiantPipeline(
        build_click_graph(days), pos_tagger, ner_tagger,
        categories=sorted({c[2] for c in world.categories}),
    )
    pipeline.run(sessions=sessions)

    replica = OntologyService(
        AttentionOntology(), ner=ner_tagger,
        tagger_options={"coherence_threshold": 0.02},
    )
    replica.refresh(pipeline.deltas)
    print(f"replica at version {replica.version} "
          f"({len(pipeline.deltas)} delta batches)")

    corpus = DocumentGenerator(world).corpus(num_concept_docs=6,
                                             num_event_docs=3)
    corpus = [(d.doc_id, d.title_tokens, d.sentences) for d in corpus]
    queries = [f"best {concept}" for concept in sorted(world.concepts)[:4]]
    asyncio.run(asyncio.wait_for(
        main_async(replica, ner_tagger, pipeline.deltas, corpus, queries), 120))


if __name__ == "__main__":
    main()
