#!/usr/bin/env python
"""Replicated delta log + cross-process shard cluster walkthrough.

Shows the replication substrate (DESIGN.md §8) end to end:

1. a builder runs the pipeline and appends its OntologyDelta stream to
   a durable, segmented DeltaLog (the system of record);
2. a SnapshotCatalog compacts the log when the un-folded prefix grows,
   garbage-collecting folded segments;
3. a PublisherThread serves the log + snapshots over length-prefixed
   JSON RPC next to the builder;
4. a RemoteClusterService runs N shard worker *processes*, each a log
   follower that bootstraps from catalog snapshot + log tail and serves
   its shard's reads over RPC — scatter-gather results byte-identical
   to a single store;
5. the builder keeps building: new deltas published to the log reach
   every worker, and the cluster serves the new state.

Run:  python examples/replicated_cluster.py
"""

import tempfile

from repro import ClusterService, GiantPipeline, OntologyService, WorldConfig, build_world
from repro.cluster import RemoteClusterService
from repro.core.ontology import NodeType
from repro.core.store import OntologyStore
from repro.replication import DeltaLog, PublisherThread, SnapshotCatalog
from repro.serving.rpc import dumps
from repro.synth.documents import DocumentGenerator
from repro.synth.querylog import QueryLogGenerator, build_click_graph


def main() -> None:
    world = build_world(WorldConfig(num_days=3, seed=0))
    days = QueryLogGenerator(world).generate_days()
    pos_tagger, ner_tagger = world.register_text_models()

    # --- builder: click logs -> ontology, day by day, into the log.
    pipeline = GiantPipeline(
        build_click_graph(days), pos_tagger, ner_tagger,
        categories=sorted({c[2] for c in world.categories}),
    )
    log_dir = tempfile.mkdtemp(prefix="giant-delta-log-")
    log = DeltaLog(log_dir, segment_max_bytes=64 * 1024)
    catalog = SnapshotCatalog(log, compact_bytes=96 * 1024,
                              retain_segments=1)

    pipeline.run(sessions=[s for d in days for s in d.sessions])
    log.extend(pipeline.deltas)
    compacted = catalog.maybe_compact(pipeline.ontology.store)
    print(f"built {len(pipeline.deltas)} delta batches: log at "
          f"v{log.last_version} in {len(log.segments())} segment(s)"
          + (f", compacted at v{compacted} (folded segments GC'd)"
             if compacted else ""))

    # --- publish the log; spin up follower-fed shard worker processes.
    options = {"coherence_threshold": 0.02}
    with PublisherThread(log, catalog) as publisher:
        host, port = publisher.address
        print(f"\npublisher on {host}:{port}; starting 2 shard workers "
              "(each bootstraps from catalog snapshot + log tail)")
        with RemoteClusterService((host, port), num_shards=2,
                                  ner=ner_tagger,
                                  tagger_options=options) as remote:
            single = OntologyService(pipeline.ontology, ner=ner_tagger,
                                     tagger_options=options)
            inproc = ClusterService(num_shards=2, ner=ner_tagger,
                                    tagger_options=options,
                                    deltas=pipeline.deltas)
            for line in remote.stats()["shards"]:
                print(f"  shard {line['shard']}: owned={line['owned']} "
                      f"ghosts={line['ghosts']} version={line['version']}")

            # --- byte-identity across all three serving topologies.
            corpus = DocumentGenerator(world).corpus(num_concept_docs=6,
                                                     num_event_docs=3)
            queries = [f"best {c}" for c in sorted(world.concepts)[:3]]
            assert dumps(remote.tag_documents(corpus)) == \
                dumps(inproc.tag_documents(corpus)) == \
                dumps(single.tag_documents(corpus))
            assert dumps(remote.interpret_queries(queries)) == \
                dumps(inproc.interpret_queries(queries)) == \
                dumps(single.interpret_queries(queries))
            print(f"\nremote scatter-gather byte-identical to in-process "
                  f"cluster and single store ({len(corpus)} docs, "
                  f"{len(queries)} queries)")

            # --- the builder keeps building; the log ships the change.
            pipeline.ontology.begin_delta("late-news")
            pipeline.ontology.add_node(
                NodeType.EVENT, "surprise sequel announced at midnight")
            late = pipeline.ontology.store.commit_delta()
            publisher.publish([late])
            single.refresh([late])
            inproc.refresh([late])
            remote.refresh([late])
            fresh = [("late-doc",
                      "surprise sequel announced at midnight".split(), [])]
            assert dumps(remote.tag_documents(fresh)) == \
                dumps(inproc.tag_documents(fresh)) == \
                dumps(single.tag_documents(fresh))
            print("published one late delta; all replicas converged to "
                  f"v{remote.version} with identical tagging")

    # --- crash durability: a torn tail is dropped on recovery.
    log.close()
    segment = log.path / log.segments()[-1].name
    with open(segment, "ab") as handle:
        handle.write(b'{"torn": half-a-record')
    recovered = DeltaLog(log_dir)
    report = recovered.last_recovery
    print(f"\ntorn-write recovery: dropped {report['dropped_lines']} "
          f"line(s) / {report['truncated_bytes']} byte(s); log back at "
          f"v{recovered.last_version}")
    snapshot, snap_version = catalog.latest()
    tail = recovered.read(snap_version if snapshot is not None else 0)
    replay = OntologyStore.bootstrap(snapshot, tail)
    assert replay.stats() == pipeline.ontology.stats()
    print("snapshot + recovered tail replays to identical stats")


if __name__ == "__main__":
    main()
