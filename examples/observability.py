#!/usr/bin/env python
"""Observability walkthrough: metrics registry + cross-process tracing.

Runs the replicated shard cluster (DESIGN.md §8) under a mixed
tag/query/stats load through the async micro-batching front, with the
full repro.obs telemetry stack (DESIGN.md §12) armed:

1. the process-wide MetricsRegistry picks up every instrumented layer —
   rpc client frames, micro-batcher queue/batch histograms, scatter
   fan-out latency, publisher follower-lag gauges — in one snapshot;
2. the tracer stamps each request with a TraceContext that rides the
   RPC frames into the spawned shard-worker processes (they inherit
   REPRO_TRACE_DIR), so one request becomes one connected span tree
   spanning driver -> worker process boundaries;
3. the continuous-telemetry layer (DESIGN.md §14) runs alongside: a
   MetricsCollector samples the registry into time series, an SloEngine
   turns them into burn-rate verdicts, and the FlightRecorder rings up
   structured events from every instrumented layer;
4. a late delta is published and the follower-lag gauges are read
   before and after the workers catch up;
5. a shard worker is restarted — an *anomaly* — which auto-dumps the
   flight-recorder ring to disk; the dump is read back and shown;
6. the per-process span logs are merged into a Chrome trace_event file
   loadable in chrome://tracing or https://ui.perfetto.dev.

Run:  python examples/observability.py
"""

import asyncio
import json
import os
import tempfile

from repro import GiantPipeline, WorldConfig, build_world
from repro.cluster import RemoteClusterService
from repro.core.ontology import NodeType
from repro.obs import (
    RECORDER_DIR_ENV,
    TRACE_DIR_ENV,
    configure_collector,
    configure_recorder,
    configure_slo_engine,
    configure_tracer,
    get_recorder,
    get_registry,
    get_tracer,
    load_spans,
    write_chrome_trace,
)
from repro.replication import DeltaLog, PublisherThread, SnapshotCatalog
from repro.serving import AsyncOntologyService
from repro.synth.documents import DocumentGenerator
from repro.synth.querylog import QueryLogGenerator, build_click_graph


def show(snapshot: dict, keys: "list[str]") -> None:
    """Pretty-print selected registry entries (histograms as p50/p95/p99)."""
    for key in keys:
        value = snapshot.get(key)
        if value is None:
            continue
        if isinstance(value, dict):
            print(f"  {key}: n={value['count']} "
                  f"p50={value['p50'] * 1e3:.2f}ms "
                  f"p95={value['p95'] * 1e3:.2f}ms "
                  f"p99={value['p99'] * 1e3:.2f}ms "
                  f"max={value['max'] * 1e3:.2f}ms")
        else:
            print(f"  {key}: {value:g}")


def main() -> None:
    # Arm the tracer first: the env var makes every process spawned
    # below (shard workers inherit the environment) trace into the same
    # directory, one spans-<process>.jsonl each.
    trace_dir = tempfile.mkdtemp(prefix="giant-trace-")
    os.environ[TRACE_DIR_ENV] = trace_dir
    configure_tracer(trace_dir, process="driver")
    tracer = get_tracer()

    # Arm the continuous-telemetry layer the same way: the recorder env
    # var makes spawned workers dump anomalies into the same directory,
    # the collector samples the registry into series, and the SLO
    # engine watches the default serving objectives over them.
    os.environ[RECORDER_DIR_ENV] = trace_dir
    configure_recorder(trace_dir, process="driver")
    collector = configure_collector(interval=0.2)
    engine = configure_slo_engine(collector)
    collector.start()

    # --- build a small world into a durable log (the system of record).
    world = build_world(WorldConfig(num_days=2, seed=0))
    days = QueryLogGenerator(world).generate_days()
    pos_tagger, ner_tagger = world.register_text_models()
    pipeline = GiantPipeline(
        build_click_graph(days), pos_tagger, ner_tagger,
        categories=sorted({c[2] for c in world.categories}),
    )
    pipeline.run(sessions=[s for d in days for s in d.sessions])
    log = DeltaLog(tempfile.mkdtemp(prefix="giant-obs-log-"),
                   segment_max_bytes=64 * 1024)
    log.extend(pipeline.deltas)
    catalog = SnapshotCatalog(log, compact_bytes=96 * 1024)
    catalog.maybe_compact(pipeline.ontology.store)

    corpus = DocumentGenerator(world).corpus(num_concept_docs=8,
                                             num_event_docs=4)
    queries = [f"best {c}" for c in sorted(world.concepts)[:6]]
    options = {"coherence_threshold": 0.02}

    with PublisherThread(log, catalog) as publisher, \
            RemoteClusterService(publisher.address, num_shards=2,
                                 ner=ner_tagger,
                                 tagger_options=options) as remote:
        print(f"2 follower-fed shard workers up at v{remote.version}; "
              f"tracing into {trace_dir}")

        # --- mixed load: concurrent tag / query / stats streams through
        # the async front; each request gets its own root span, which
        # the batcher and the shard RPC clients extend across processes.
        async def tag_stream(aio):
            for start in range(0, len(corpus), 3):
                batch = corpus[start:start + 3]
                with tracer.span("load.tag", docs=len(batch)):
                    await aio.tag_documents(batch)

        async def query_stream(aio):
            for query in queries:
                with tracer.span("load.query"):
                    await aio.interpret_queries([query])

        async def stats_stream(aio):
            for _ in range(3):
                with tracer.span("load.stats"):
                    await aio.stats()

        async def drive():
            async with AsyncOntologyService(remote, max_delay=0.002) as aio:
                await asyncio.gather(tag_stream(aio), query_stream(aio),
                                     query_stream(aio), stats_stream(aio))

        asyncio.run(asyncio.wait_for(drive(), 120))
        snapshot = get_registry().snapshot()
        print(f"\nregistry snapshot after mixed load "
              f"({len(snapshot)} instruments); highlights:")
        show(snapshot, [
            "aio.batcher.requests",
            "aio.batcher.batches",
            "aio.batcher.queue_wait_seconds",
            "aio.batcher.execute_seconds",
            "scatter.fanout_seconds",
            "scatter.shard_seconds",
            "replication.fetches",
            "replication.followers",
            "replication.gc_floor",
        ])

        # --- follower lag: publish a late delta and refresh the fleet.
        # Each lag gauge holds the follower's position as of its last
        # call to the publisher, so the catch-up fetch itself records
        # the induced lag (1 version, a few ms old) that it then closes.
        pipeline.ontology.begin_delta("late-news")
        pipeline.ontology.add_node(
            NodeType.EVENT, "surprise sequel announced at midnight")
        late = pipeline.ontology.store.commit_delta()
        publisher.publish([late])
        remote.refresh([late])
        lag_keys = sorted(k for k in get_registry().snapshot()
                          if ".lag_" in k or k.endswith("last_version"))
        print(f"\ninduced follower lag, stamped by the catch-up fetch "
              f"(workers now at v{remote.version}):")
        show(get_registry().snapshot(), lag_keys)

        # --- continuous telemetry (DESIGN.md §14): the collector has
        # been sampling the registry in the background through the load
        # above, deriving counter rates and windowed percentiles; the
        # SLO engine turns those series into burn-rate verdicts.
        collector.sample()  # close the window with one final sample
        desc = collector.describe()
        print(f"\ncollector: {desc['samples_taken']} samples across "
              f"{desc['series']} series; highlights:")
        for name in ("aio.batcher.requests.rate",
                     "aio.batcher.execute_seconds.p95",
                     "scatter.fanout_seconds.p95"):
            point = collector.latest(name)
            if point is not None:
                print(f"  {name}: {point[1]:g} (t={point[0]:.2f})")
        for verdict in engine.evaluate_all():
            print(f"  slo {verdict['slo']}: {verdict['verdict']}")

        # --- the flight recorder has been ringing up events from the
        # same load (deadline flushes, stragglers, ...).  Restart a
        # shard worker: ``worker.restart`` is in the anomaly taxonomy,
        # so the recorder auto-dumps its ring — the black box names the
        # affected component with no debugger attached.
        print("\nrestarting shard 0 (an anomaly -> flight-recorder dump)")
        remote.restart_shard(0)
        recorder = get_recorder()
        rdesc = recorder.describe()
        print(f"recorder ring: {rdesc['events_held']} events held, "
              f"{rdesc['anomalies']} anomalies, "
              f"{rdesc['dumps_written']} dumps written")
        dump_path = recorder.last_dump_path or recorder.dump()
        print(f"flight-recorder dump: {dump_path}")
        with open(dump_path, encoding="utf-8") as handle:
            dumped = [json.loads(line) for line in handle]
        header, events = dumped[0], dumped[1:]
        anomalies = [e for e in events if e["anomaly"]]
        print(f"  dump reason={header['reason']!r} holds "
              f"{header['events']} events, {len(anomalies)} anomalous;"
              " last anomaly:")
        last = anomalies[-1]
        print(f"  {last['kind']} component={last['component']!r} "
              f"seq={last['seq']}")

        # --- persist the snapshot for offline diffing.
        snap_path = os.path.join(trace_dir, "registry-snapshot.json")
        with open(snap_path, "w") as handle:
            json.dump(get_registry().snapshot(), handle, indent=1,
                      sort_keys=True)
        print(f"\nfull registry snapshot dumped to {snap_path}")

    collector.stop()

    # --- merge the per-process span logs into one Chrome trace.
    spans = load_spans(trace_dir)
    by_process: "dict[str, int]" = {}
    for span in spans:
        by_process[span["process"]] = by_process.get(span["process"], 0) + 1
    chrome_path = os.path.join(trace_dir, "trace.json")
    exported = write_chrome_trace(trace_dir, chrome_path)
    print(f"{exported} spans from {len(by_process)} processes "
          + str(dict(sorted(by_process.items()))))
    roots = [s for s in spans if s.get("parent") is None]
    print(f"{len(roots)} root spans (one per driven request); open "
          f"{chrome_path} in chrome://tracing or ui.perfetto.dev "
          "for the timeline")


if __name__ == "__main__":
    main()
