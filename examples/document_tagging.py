#!/usr/bin/env python
"""Document tagging with the Attention Ontology (paper Section 4).

Shows the paper's flagship capability: tagging a document with a concept it
never mentions.  A document about "iron man" and "captain america" receives
the tag "marvel superhero movies" through key-entity inference; an event
headline is tagged with its event through LCS matching.

Run:  python examples/document_tagging.py
"""

from repro import GiantPipeline, WorldConfig, build_world
from repro.apps.tagging import DocumentTagger
from repro.synth.documents import DocumentGenerator
from repro.synth.querylog import QueryLogGenerator, build_click_graph


def main() -> None:
    world = build_world(WorldConfig(num_days=3, seed=0))
    days = QueryLogGenerator(world).generate_days()
    graph = build_click_graph(days)
    sessions = [s for d in days for s in d.sessions]
    pos_tagger, ner_tagger = world.register_text_models()

    # Model-free pipeline (alignment + CoverRank fallbacks) keeps the
    # example fast; see quickstart.py for the trained-GCTSP version.
    pipeline = GiantPipeline(
        graph, pos_tagger, ner_tagger,
        categories=sorted({c[2] for c in world.categories}),
    )
    ontology = pipeline.run(sessions=sessions)
    print("ontology:", ontology.stats())

    tagger = DocumentTagger(ontology, ner_tagger, coherence_threshold=0.02)
    corpus = DocumentGenerator(world).corpus(num_concept_docs=6, num_event_docs=4)

    def judge(tag, gold_concepts):
        """A tag is correct when it is the gold concept or a true isA
        ancestor of it (e.g. 'animated films' for a Miyazaki-films doc)."""
        if tag is None:
            return False
        if tag in gold_concepts:
            return True
        from repro.core.ontology import NodeType

        tag_node = ontology.find(NodeType.CONCEPT, tag)
        for gold in gold_concepts:
            gold_node = ontology.find(NodeType.CONCEPT, gold)
            if tag_node and gold_node and ontology.has_path(
                    tag_node.node_id, gold_node.node_id):
                return True
        return False

    correct = attempted = 0
    print("\ntagging a corpus of synthetic documents:\n")
    for doc in corpus:
        result = tagger.tag(doc.doc_id, doc.title_tokens, doc.sentences)
        top_concept = result.concept_tags[0] if result.concept_tags else None
        top_event = result.event_tags[0] if result.event_tags else None
        print(f"  title: {doc.title!r}")
        if doc.gold_concepts:
            gold = next(iter(doc.gold_concepts))
            hit = judge(top_concept, doc.gold_concepts)
            attempted += 1
            correct += int(hit)
            print(f"    concept tag: {top_concept!r}  (gold: {gold!r}) "
                  f"{'OK' if hit else ''}")
        if doc.gold_events:
            print(f"    event tag:   {top_event!r}")
        print()

    if attempted:
        print(f"concept tagging accuracy on this corpus: {correct}/{attempted} "
              "(judge-style: ancestor tags count)")


if __name__ == "__main__":
    main()
