#!/usr/bin/env python
"""Query conceptualization and rewriting (paper Section 4).

A query conveying a concept is rewritten by appending its instance
entities ("family road trip vehicles" -> "... honda odyssey"); a query
conveying an entity triggers recommendation of correlated entities.

Run:  python examples/query_understanding.py
"""

from repro import WorldConfig, build_world
from repro.apps.query import QueryUnderstander
from repro.core.ontology import AttentionOntology, EdgeType, NodeType


def ontology_from_ground_truth(world) -> AttentionOntology:
    """Assemble an ontology directly from the gold world (no mining) —
    isolates the query-understanding logic for the example."""
    onto = AttentionOntology()
    for concept in world.concepts.values():
        cnode = onto.add_node(NodeType.CONCEPT, concept.phrase)
        for member in concept.members:
            enode = onto.add_node(NodeType.ENTITY, member)
            onto.add_edge(cnode.node_id, enode.node_id, EdgeType.ISA)
    for pair in world.gold_correlated_entities():
        a, b = sorted(pair)
        na, nb = onto.find(NodeType.ENTITY, a), onto.find(NodeType.ENTITY, b)
        if na and nb and not onto.has_edge(na.node_id, nb.node_id, EdgeType.CORRELATE):
            onto.add_edge(na.node_id, nb.node_id, EdgeType.CORRELATE)
    return onto


def main() -> None:
    world = build_world(WorldConfig(seed=0))
    onto = ontology_from_ground_truth(world)
    qu = QueryUnderstander(onto, max_rewrites=3, max_recommendations=4)

    queries = [
        "vehicles choices for family road trip vehicles",
        "best fuel efficient cars",
        "honda civic price",
        "taylor swift concert dates",
        "gardening tips",  # out-of-ontology
    ]
    for query in queries:
        analysis = qu.analyze(query)
        print(f"query: {query!r}")
        if analysis.conveys_concept:
            print(f"  conveys concept: {analysis.concepts[0]!r}")
            for rewrite in analysis.rewrites:
                print(f"    rewrite: {rewrite!r}")
        if analysis.conveys_entity:
            print(f"  conveys entity: {analysis.entities[0]!r}")
            if analysis.recommendations:
                print(f"    also try: {', '.join(analysis.recommendations)}")
        if not analysis.conveys_concept and not analysis.conveys_entity:
            print("  no attention detected (falls back to keyword search)")
        print()


if __name__ == "__main__":
    main()
