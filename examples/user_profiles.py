#!/usr/bin/env python
"""User interest profiles + incremental story tracking.

Demonstrates the two "beyond keyword matching" behaviours the paper's
introduction motivates:

* **inaccurate recommendation** — a user reads about "honda civic"; the
  profile infers the *concepts* they actually care about ("economy cars"),
  enabling extrapolation to articles that never mention the civic;
* **monotonous recommendation** — a user reads one event of a developing
  story; the story tracker recommends *follow-up events*, not the same
  event again.

Run:  python examples/user_profiles.py
"""

from repro import WorldConfig, build_world
from repro.apps.profiles import UserProfiler
from repro.apps.story_tracker import StoryTracker
from repro.apps.story_tree import EventRecord
from repro.core.ontology import AttentionOntology, EdgeType, NodeType


def build_gold_ontology(world) -> AttentionOntology:
    onto = AttentionOntology()
    for concept in world.concepts.values():
        cnode = onto.add_node(NodeType.CONCEPT, concept.phrase)
        for member in concept.members:
            enode = onto.add_node(NodeType.ENTITY, member)
            onto.add_edge(cnode.node_id, enode.node_id, EdgeType.ISA)
    for topic in world.topics.values():
        tnode = onto.add_node(NodeType.TOPIC, topic.phrase)
        for eid in topic.event_ids:
            event = world.events[eid]
            evnode = onto.add_node(NodeType.EVENT, event.phrase)
            onto.add_edge(tnode.node_id, evnode.node_id, EdgeType.ISA)
    return onto


def main() -> None:
    world = build_world(WorldConfig(num_days=8, seed=2, events_per_template=4))
    ontology = build_gold_ontology(world)

    # ------------------------------------------------------------------
    # 1. Interest inference: read entity -> infer concept.
    # ------------------------------------------------------------------
    profiler = UserProfiler(ontology)
    profiler.record_read("alice", ["honda civic"])
    profiler.record_read("alice", ["toyota corolla"])
    print("alice read about: honda civic, toyota corolla")
    print("inferred interests (never read about these):")
    for phrase, weight in profiler.recommend_tags("alice", k=5):
        print(f"  {phrase!r}  ({weight:.2f})")

    # ------------------------------------------------------------------
    # 2. Story tracking: follow-up events instead of repeats.
    # ------------------------------------------------------------------
    tracker = StoryTracker()
    events = [
        EventRecord(e.phrase, e.trigger, [e.entity], e.day, e.location)
        for e in world.events.values()
    ]
    tracker.add_events(events)
    print(f"\ntracked {len(tracker)} stories from {len(events)} events")

    topic = max(world.topics.values(), key=lambda t: len(t.event_ids))
    first = world.events[topic.event_ids[0]].phrase
    print(f"\nbob read: {first!r}")
    print("follow-ups from the same story:")
    for event in tracker.follow_ups(first, limit=3):
        print(f"  day {event.day}: {event.phrase!r}")


if __name__ == "__main__":
    main()
