#!/usr/bin/env python
"""Online serving: delta-refreshed replicas tagging and interpreting batches.

Shows the storage/serving split (DESIGN.md): a builder process runs the
GIANT pipeline and emits OntologyDelta batches; a serving replica starts
empty, catches up by replaying the deltas, and then serves batched
document-tagging and query-interpretation requests from its own indexed
store — with version-keyed LRU caching underneath.

Run:  python examples/online_serving.py
"""

from repro import GiantPipeline, OntologyService, WorldConfig, build_world
from repro.core.ontology import AttentionOntology
from repro.synth.documents import DocumentGenerator
from repro.synth.querylog import QueryLogGenerator, build_click_graph


def main() -> None:
    world = build_world(WorldConfig(num_days=3, seed=0))
    days = QueryLogGenerator(world).generate_days()
    sessions = [s for d in days for s in d.sessions]
    pos_tagger, ner_tagger = world.register_text_models()

    # --- builder process: click logs -> ontology, emitted as deltas.
    pipeline = GiantPipeline(
        build_click_graph(days), pos_tagger, ner_tagger,
        categories=sorted({c[2] for c in world.categories}),
    )
    pipeline.run(sessions=sessions)
    print("builder ontology:", pipeline.ontology.stats())
    print(f"emitted {len(pipeline.deltas)} delta batches "
          f"({sum(len(d) for d in pipeline.deltas)} ops)")

    # --- serving replica: starts empty, catches up from the delta stream.
    replica = OntologyService(
        AttentionOntology(), ner=ner_tagger,
        tagger_options={"coherence_threshold": 0.02},
    )
    applied = replica.refresh(pipeline.deltas)
    print(f"replica applied {applied} deltas -> version {replica.version}")
    assert replica.ontology.stats() == pipeline.ontology.stats()

    # --- batched document tagging off the inverted index.
    corpus = DocumentGenerator(world).corpus(num_concept_docs=4,
                                             num_event_docs=2)
    tagged = replica.tag_documents(corpus)
    print("\nbatched tagging:")
    for doc, result in zip(corpus, tagged):
        top = result.concept_tags[:1] or result.event_tags[:1]
        print(f"  {doc.title!r} -> {top}")

    # --- batched query interpretation.
    queries = [f"best {concept}" for concept in sorted(world.concepts)[:3]]
    print("\nbatched query interpretation:")
    for analysis in replica.interpret_queries(queries):
        print(f"  {analysis.query!r} -> concepts={analysis.concepts[:1]} "
              f"rewrites={analysis.rewrites[:2]}")

    print("\nserving stats:", {
        k: v for k, v in replica.stats().items() if k != "ontology"
    })


if __name__ == "__main__":
    main()
