#!/usr/bin/env python
"""News-feed recommendation with attention tags (paper Section 5.4).

Reproduces the Figure 6/7 experiment at example scale: simulate a tag-based
news feed, compare CTR across tag-type arms, and show why abstractive tags
(topics, concepts) beat keyword-level matching — the paper's motivating
"inaccurate and monotonous recommendation" problems.

Run:  python examples/news_recommendation.py
"""

from repro import WorldConfig, build_world
from repro.apps.recsys import (
    ArmConfig,
    FeedSimulator,
    default_figure6_arms,
    default_figure7_arms,
)
from repro.eval.reporting import render_series


def mean_ctr(results) -> float:
    clicks = sum(r.clicks for r in results)
    impressions = sum(r.impressions for r in results)
    return clicks / impressions if impressions else 0.0


def main() -> None:
    world = build_world(WorldConfig(num_days=6, seed=1, events_per_template=3))
    simulator = FeedSimulator(world, num_users=400, seed=0)

    print("=== Figure 7: CTR by tag type ===\n")
    results = simulator.compare_arms(default_figure7_arms())
    days = [f"day {d}" for d in range(world.config.num_days)]
    series = {name: [100 * r.ctr for r in rs] for name, rs in results.items()}
    print(render_series("CTR (%) per day and tag type", days, series,
                        precision=2, unit="%"))

    print("\n=== Figure 6: all tags vs category+entity ===\n")
    results6 = simulator.compare_arms(default_figure6_arms())
    for name, rs in results6.items():
        print(f"  {name:24s} mean CTR = {100 * mean_ctr(rs):.2f}%")
    uplift = mean_ctr(results6["all types of tags"]) / mean_ctr(
        results6["category + entity"]) - 1
    print(f"  relative uplift: {100 * uplift:.1f}%")

    print("\n=== why: a single user's view ===\n")
    # Topic matching surfaces follow-up events the entity tag misses.
    user = simulator._users[0]
    print(f"user follows topic: {user.topic!r}")
    print(f"  profile entity tags: {sorted(user.tags['entity'])}")
    print(f"  latent interest covers {len(user.events)} events")
    topic_arm = ArmConfig("topic-only", ("topic",))
    entity_arm = ArmConfig("entity-only", ("entity",))
    for arm in (topic_arm, entity_arm):
        rs = simulator.simulate_arm(arm, days=[0, 1])
        print(f"  {arm.name:12s}: {sum(r.impressions for r in rs)} impressions, "
              f"CTR {100 * mean_ctr(rs):.2f}%")


if __name__ == "__main__":
    main()
